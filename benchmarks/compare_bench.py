#!/usr/bin/env python
"""Gate a freshly emitted ``BENCH_*.json`` against committed history.

Usage::

    python benchmarks/compare_bench.py BENCH_engines.json [history_dir]
    python benchmarks/compare_bench.py BENCH_serving.json [history_dir]

Each PR that moves performance commits a dated record under
``benchmarks/history/``; this script compares the fresh artifact
against the newest record *of the same kind* (``<date>-<label>-
engines.json`` vs ``...-serving.json``) and exits nonzero when a
tracked metric regresses beyond the noise band, so a perf regression
fails CI instead of silently eroding the story.

On top of the newest-snapshot gate, a **trend view** fits a
least-squares slope to each tracked metric over the last
``TREND_WINDOW`` history snapshots plus the fresh run: a sequence of
individually-within-noise drifts that compounds into a sustained
slide (adverse slope beyond ``TREND_SLOPE_LIMIT`` per snapshot *and*
the fresh value adverse vs the window's start) also fails the gate —
the one-baseline comparison cannot see it by construction.

For *wall clock* only ratio metrics are compared — speedups,
auto-vs-best-fixed, the serving layer's batching throughput gain —
never absolute milliseconds or req/s: ratios of measurements taken on
the same box in the same run are stable across machines whose absolute
speeds differ.  Absolute ``synaptic_ops`` counts ARE gated, though:
op billing is deterministic (same model, same seeds), so a count that
moves means either the billing accounting or the benchmark scenario
changed — both of which must be deliberate and re-snapshotted, never
silent.  The same applies to the record's shape: when a perf PR grows
``BENCH_engines.json`` (new sections, new scenarios) without
committing a fresh dated record under ``benchmarks/history/``, the
gate fails with a reminder to run ``record_history.py`` — history that
no longer matches what the benchmark emits gates nothing.  Pure stdlib
on purpose: it runs before/without the test environment.
"""

import json
import re
import sys
from pathlib import Path

# Shared-CI-box timing jitter: a tracked ratio may wobble by this
# factor run to run without any code change; beyond it is a regression.
NOISE_BAND = 1.30

# Hard floors/ceilings that hold regardless of what history says —
# the acceptance criteria the benchmarks themselves assert.
MIN_BATCHED_SPEEDUP = 3.0
MIN_DVS_EVENT_SPEEDUP = 1.0
MAX_AUTO_RATIO = 1.1
# Coalescing must clearly beat serial dispatch for the batching layer
# to justify existing; measured ~5x on a single-core box, so 1.5 is a
# conservative floor well outside timing noise.
MIN_BATCHING_GAIN = 1.5
# Planner v2 gates: a cost-model-predicted cold start must at least
# halve calibration wall clock, and the predicted plan must execute
# within the same bound a raced plan is held to.
MIN_CALIBRATION_SPEEDUP = 2.0
MAX_MODEL_PLAN_RATIO = 1.1
# The N-replica process pool must at least double single-worker
# throughput — but only on runners with enough cores for process
# parallelism to exist (the record's own gate_eligible flag).
MIN_POOL_SCALING_GAIN = 2.0

# Trend gate: how many committed snapshots (newest-first) the slope is
# fitted over, and the adverse normalized slope (fraction of the
# window mean, per snapshot) beyond which a sustained drift fails.
TREND_WINDOW = 5
TREND_SLOPE_LIMIT = 0.08
TREND_MIN_POINTS = 3

# Absolute synaptic_ops drift allowed vs history.  Billing is
# deterministic, but summation-order differences between BLAS builds
# can flip a membrane sitting within an ulp of threshold and ripple a
# handful of spikes downstream.
OPS_TOLERANCE = 0.02

SNAPSHOT_REMINDER = (
    "if this change is intentional, snapshot the fresh record with "
    "`python benchmarks/record_history.py <label>` and commit the dated "
    "file under benchmarks/history/ in the same PR"
)


def _engines_metrics(record):
    """The tracked (name, value, higher_is_better) triples."""
    metrics = [
        ("batched_speedup_vs_dense", record["batched_speedup_vs_dense"], True),
        ("auto_vs_best_fixed", record["auto_vs_best_fixed"], False),
        (
            "dvs.event_batched_speedup_vs_batched",
            record["dvs"]["event_batched_speedup_vs_batched"],
            True,
        ),
        ("dvs.auto_vs_best_fixed", record["dvs"]["auto_vs_best_fixed"], False),
    ]
    planner = record.get("planner")
    if planner is not None:  # records predating Planner v2 lack the section
        metrics.extend(
            [
                (
                    "planner.calibration_speedup",
                    planner["calibration_speedup"],
                    True,
                ),
                (
                    "planner.model_plan_vs_best_fixed",
                    planner["model_plan_vs_best_fixed"],
                    False,
                ),
            ]
        )
    return metrics


def _engines_floors(record):
    """(name, value, bound, ok) rows for the history-free hard bounds."""
    rows = []
    for name, value, higher in _engines_metrics(record):
        if name == "batched_speedup_vs_dense":
            rows.append((name, value, MIN_BATCHED_SPEEDUP, value >= MIN_BATCHED_SPEEDUP))
        elif name == "dvs.event_batched_speedup_vs_batched":
            rows.append((name, value, MIN_DVS_EVENT_SPEEDUP, value > MIN_DVS_EVENT_SPEEDUP))
        elif name == "planner.calibration_speedup":
            rows.append(
                (name, value, MIN_CALIBRATION_SPEEDUP, value >= MIN_CALIBRATION_SPEEDUP)
            )
        elif name == "planner.model_plan_vs_best_fixed":
            rows.append(
                (name, value, MAX_MODEL_PLAN_RATIO, value <= MAX_MODEL_PLAN_RATIO)
            )
        else:
            rows.append((name, value, MAX_AUTO_RATIO, value <= MAX_AUTO_RATIO))
    return rows


def _engines_ops(record):
    """Absolute synaptic-op counts for the *fixed* engines.

    Fixed backends bill deterministically (same model, same seeds), so
    these are gated near-exactly.  The auto engine is excluded: its ops
    follow whichever plan the timing races picked on this box, which is
    legitimately machine-dependent.
    """
    rows = []
    for name, entry in sorted(record["engines"].items()):
        if name == "auto":
            continue
        rows.append((f"engines.{name}.synaptic_ops", int(entry["synaptic_ops"])))
    for name, entry in sorted(record["dvs"]["engines"].items()):
        if name == "auto":
            continue
        rows.append(
            (f"dvs.engines.{name}.synaptic_ops", int(entry["synaptic_ops"]))
        )
    return rows


def _serving_ops(record):
    return []  # the serving record carries no op counts


def _serving_metrics(record):
    gain = record["throughput"]["batching_throughput_gain"]
    metrics = [("throughput.batching_throughput_gain", gain, True)]
    pool = record.get("pool")
    if pool is not None:  # records predating the process pool lack it
        metrics.append(
            ("pool.pool_scaling_gain", pool["pool_scaling_gain"], True)
        )
    return metrics


def _serving_floors(record):
    gain = record["throughput"]["batching_throughput_gain"]
    rows = [
        (
            "throughput.batching_throughput_gain",
            gain,
            MIN_BATCHING_GAIN,
            gain >= MIN_BATCHING_GAIN,
        )
    ]
    pool = record.get("pool")
    if pool is not None and pool.get("gate_eligible"):
        # The 2x floor only means something with >=4 cores; smaller
        # runners record the gain (and the trend view tracks it) but
        # cannot be held to a parallel-speedup bound.
        rows.append(
            (
                "pool.pool_scaling_gain",
                pool["pool_scaling_gain"],
                MIN_POOL_SCALING_GAIN,
                pool["pool_scaling_gain"] >= MIN_POOL_SCALING_GAIN,
            )
        )
    return rows


#: record["benchmark"] -> (metrics fn, floors fn, ops fn, history suffix)
KINDS = {
    "engines_wall_clock": (_engines_metrics, _engines_floors, _engines_ops, "engines"),
    "serving_load": (_serving_metrics, _serving_floors, _serving_ops, "serving"),
}


def _natural_key(path):
    """Sort key treating digit runs numerically, so same-day labels
    order ``pr9 < pr10`` instead of the lexical ``pr10 < pr8``."""
    return tuple(
        (1, int(part)) if part.isdigit() else (0, part)
        for part in re.split(r"(\d+)", path.name)
    )


def history_records(history_dir, suffix):
    """Same-kind history records, oldest first (natural order)."""
    return sorted(history_dir.glob(f"*-{suffix}.json"), key=_natural_key)


def latest_history(history_dir, suffix):
    records = history_records(history_dir, suffix)
    return records[-1] if records else None


def load_history_window(history_dir, suffix, window=TREND_WINDOW):
    """The last ``window`` same-kind history records, oldest first."""
    loaded = []
    for path in history_records(history_dir, suffix)[-window:]:
        try:
            loaded.append((path.name, json.loads(path.read_text())))
        except (OSError, json.JSONDecodeError):
            print(f"  (skipping unreadable history record {path.name})")
    return loaded


def _slope(values):
    """Least-squares slope of ``values`` against their index."""
    n = len(values)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    covariance = sum(
        (i - mean_x) * (v - mean_y) for i, v in enumerate(values)
    )
    variance = sum((i - mean_x) ** 2 for i in range(n))
    return covariance / variance


def trend_check(current, history, metrics_fn):
    """Failure strings for metrics sliding adversely across snapshots.

    ``history`` is the (name, record) window oldest-first; the fresh
    record is appended as the final point.  A metric needs at least
    TREND_MIN_POINTS points (old records may predate it) and fails
    only on a *sustained* adverse drift: normalized slope beyond
    TREND_SLOPE_LIMIT per snapshot AND the fresh value adverse vs the
    window's first — a single noisy dip cannot trip it, and neither
    can a slide that has already recovered.
    """
    failures = []
    series = {}
    for _, record in history:
        try:
            for name, value, _higher in metrics_fn(record):
                series.setdefault(name, []).append(value)
        except (KeyError, TypeError):
            continue  # a record shape from before this metric existed
    rows = []
    for name, value, higher in metrics_fn(current):
        points = series.get(name, []) + [value]
        if len(points) < TREND_MIN_POINTS:
            rows.append((name, points, None, "n/a (too few points)"))
            continue
        mean = sum(points) / len(points)
        if mean == 0:
            continue
        normalized_slope = _slope(points) / abs(mean)
        adverse_slope = -normalized_slope if higher else normalized_slope
        endpoint_adverse = (
            points[-1] < points[0] if higher else points[-1] > points[0]
        )
        sliding = adverse_slope > TREND_SLOPE_LIMIT and endpoint_adverse
        status = "REGRESSING" if sliding else "ok"
        rows.append((name, points, normalized_slope, status))
        if sliding:
            failures.append(
                f"{name} is sliding {abs(normalized_slope):.1%}/snapshot "
                f"across the last {len(points)} runs "
                f"({points[0]:.3f} -> {points[-1]:.3f}); individually "
                f"within noise, collectively a regression"
            )
    for name, points, slope, status in rows:
        arrow = " -> ".join(f"{p:.3f}" for p in points)
        slope_text = "" if slope is None else f" (slope {slope:+.1%}/snapshot)"
        print(f"  {name}: {arrow}{slope_text} {status}")
    return failures


def compare(current, baseline, metrics_fn):
    """Return a list of failure strings comparing current vs baseline."""
    failures = []
    base = {name: value for name, value, _ in metrics_fn(baseline)}
    for name, value, higher in metrics_fn(current):
        reference = base.get(name)
        if reference is None:
            continue
        if higher:
            bound = reference / NOISE_BAND
            ok = value >= bound
            direction = ">="
        else:
            bound = reference * NOISE_BAND
            ok = value <= bound
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {value:.3f} (history {reference:.3f}, "
            f"need {direction} {bound:.3f}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} regressed: {value:.3f} vs history {reference:.3f} "
                f"(noise band {NOISE_BAND}x)"
            )
    return failures


def compare_ops(current, baseline, ops_fn):
    """Gate absolute op counts: deterministic, so near-exact equality."""
    failures = []
    base = dict(ops_fn(baseline))
    for name, value in ops_fn(current):
        reference = base.get(name)
        if reference is None:
            continue
        if reference == 0:
            ok = value == 0
        else:
            ok = abs(value - reference) <= OPS_TOLERANCE * reference
        status = "ok" if ok else "DRIFT"
        print(
            f"  {name}: {value} (history {reference}, "
            f"tolerance {OPS_TOLERANCE:.0%}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} moved: {value} vs history {reference} (beyond "
                f"{OPS_TOLERANCE:.0%}) — billing or scenario changed; "
                f"{SNAPSHOT_REMINDER}"
            )
    return failures


def stale_history(current, baseline, metrics_fn, ops_fn):
    """A failure string when the fresh record tracks things history lacks.

    A perf PR that grows the benchmark (new sections like ``planner``,
    new scenarios, new engines) makes the committed history stale: the
    new metrics would silently escape the regression gate on every
    future run.  Detect it from the tracked names themselves — anything
    the fresh record gates that the newest history record does not know
    about means ``record_history.py`` was not re-run.
    """
    current_names = {name for name, *_ in metrics_fn(current)}
    current_names.update(name for name, _ in ops_fn(current))
    base_names = {name for name, *_ in metrics_fn(baseline)}
    base_names.update(name for name, _ in ops_fn(baseline))
    new = sorted(current_names - base_names)
    if new:
        return (
            f"history record predates tracked metrics {new}; "
            f"{SNAPSHOT_REMINDER}"
        )
    return None


def main(argv):
    if len(argv) not in (2, 3):
        print(
            "usage: compare_bench.py <BENCH_*.json> [history_dir]",
            file=sys.stderr,
        )
        return 2
    current_path = Path(argv[1])
    history_dir = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent / "history"
    )
    if not current_path.exists():
        print(f"compare failed: {current_path} does not exist", file=sys.stderr)
        return 1
    current = json.loads(current_path.read_text())
    kind = current.get("benchmark")
    if kind not in KINDS:
        print(
            f"compare failed: unknown benchmark kind {kind!r} in "
            f"{current_path}",
            file=sys.stderr,
        )
        return 1
    metrics_fn, floors_fn, ops_fn, suffix = KINDS[kind]

    failures = []
    print(f"hard bounds on {current_path}:")
    for name, value, bound, ok in floors_fn(current):
        print(f"  {name}: {value:.3f} (bound {bound}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{name}={value:.3f} violates hard bound {bound}")

    baseline_path = latest_history(history_dir, suffix)
    if baseline_path is None:
        print(f"no {suffix} history in {history_dir}; hard bounds only")
    else:
        baseline = json.loads(baseline_path.read_text())
        print(f"vs {baseline_path.name}:")
        stale = stale_history(current, baseline, metrics_fn, ops_fn)
        if stale is not None:
            print(f"  STALE HISTORY: {stale}")
            failures.append(stale)
        failures.extend(compare(current, baseline, metrics_fn))
        failures.extend(compare_ops(current, baseline, ops_fn))
        window = load_history_window(history_dir, suffix)
        print(f"trend over last {len(window)} snapshot(s) + this run:")
        failures.extend(trend_check(current, window, metrics_fn))

    if failures:
        for failure in failures:
            print(f"perf gate: {failure}", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
