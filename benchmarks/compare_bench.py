#!/usr/bin/env python
"""Gate a freshly emitted ``BENCH_*.json`` against committed history.

Usage::

    python benchmarks/compare_bench.py BENCH_engines.json [history_dir]
    python benchmarks/compare_bench.py BENCH_serving.json [history_dir]

Each PR that moves performance commits a dated record under
``benchmarks/history/``; this script compares the fresh artifact
against the newest record *of the same kind* (``<date>-<label>-
engines.json`` vs ``...-serving.json``) and exits nonzero when a
tracked metric regresses beyond the noise band, so a perf regression
fails CI instead of silently eroding the story.

Only *ratio* metrics are compared — speedups, auto-vs-best-fixed, the
serving layer's batching throughput gain — never absolute milliseconds
or req/s: ratios of measurements taken on the same box in the same run
are stable across machines whose absolute speeds differ.  Pure stdlib
on purpose: it runs before/without the test environment.
"""

import json
import sys
from pathlib import Path

# Shared-CI-box timing jitter: a tracked ratio may wobble by this
# factor run to run without any code change; beyond it is a regression.
NOISE_BAND = 1.30

# Hard floors/ceilings that hold regardless of what history says —
# the acceptance criteria the benchmarks themselves assert.
MIN_BATCHED_SPEEDUP = 3.0
MIN_DVS_EVENT_SPEEDUP = 1.0
MAX_AUTO_RATIO = 1.1
# Coalescing must clearly beat serial dispatch for the batching layer
# to justify existing; measured ~5x on a single-core box, so 1.5 is a
# conservative floor well outside timing noise.
MIN_BATCHING_GAIN = 1.5


def _engines_metrics(record):
    """The tracked (name, value, higher_is_better) triples."""
    return [
        ("batched_speedup_vs_dense", record["batched_speedup_vs_dense"], True),
        ("auto_vs_best_fixed", record["auto_vs_best_fixed"], False),
        (
            "dvs.event_batched_speedup_vs_batched",
            record["dvs"]["event_batched_speedup_vs_batched"],
            True,
        ),
        ("dvs.auto_vs_best_fixed", record["dvs"]["auto_vs_best_fixed"], False),
    ]


def _engines_floors(record):
    """(name, value, bound, ok) rows for the history-free hard bounds."""
    rows = []
    for name, value, higher in _engines_metrics(record):
        if name == "batched_speedup_vs_dense":
            rows.append((name, value, MIN_BATCHED_SPEEDUP, value >= MIN_BATCHED_SPEEDUP))
        elif name == "dvs.event_batched_speedup_vs_batched":
            rows.append((name, value, MIN_DVS_EVENT_SPEEDUP, value > MIN_DVS_EVENT_SPEEDUP))
        else:
            rows.append((name, value, MAX_AUTO_RATIO, value <= MAX_AUTO_RATIO))
    return rows


def _serving_metrics(record):
    gain = record["throughput"]["batching_throughput_gain"]
    return [("throughput.batching_throughput_gain", gain, True)]


def _serving_floors(record):
    gain = record["throughput"]["batching_throughput_gain"]
    return [
        (
            "throughput.batching_throughput_gain",
            gain,
            MIN_BATCHING_GAIN,
            gain >= MIN_BATCHING_GAIN,
        )
    ]


#: record["benchmark"] -> (metrics fn, floors fn, history suffix)
KINDS = {
    "engines_wall_clock": (_engines_metrics, _engines_floors, "engines"),
    "serving_load": (_serving_metrics, _serving_floors, "serving"),
}


def latest_history(history_dir, suffix):
    records = sorted(history_dir.glob(f"*-{suffix}.json"))
    return records[-1] if records else None


def compare(current, baseline, metrics_fn):
    """Return a list of failure strings comparing current vs baseline."""
    failures = []
    base = {name: value for name, value, _ in metrics_fn(baseline)}
    for name, value, higher in metrics_fn(current):
        reference = base.get(name)
        if reference is None:
            continue
        if higher:
            bound = reference / NOISE_BAND
            ok = value >= bound
            direction = ">="
        else:
            bound = reference * NOISE_BAND
            ok = value <= bound
            direction = "<="
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {name}: {value:.3f} (history {reference:.3f}, "
            f"need {direction} {bound:.3f}) {status}"
        )
        if not ok:
            failures.append(
                f"{name} regressed: {value:.3f} vs history {reference:.3f} "
                f"(noise band {NOISE_BAND}x)"
            )
    return failures


def main(argv):
    if len(argv) not in (2, 3):
        print(
            "usage: compare_bench.py <BENCH_*.json> [history_dir]",
            file=sys.stderr,
        )
        return 2
    current_path = Path(argv[1])
    history_dir = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent / "history"
    )
    if not current_path.exists():
        print(f"compare failed: {current_path} does not exist", file=sys.stderr)
        return 1
    current = json.loads(current_path.read_text())
    kind = current.get("benchmark")
    if kind not in KINDS:
        print(
            f"compare failed: unknown benchmark kind {kind!r} in "
            f"{current_path}",
            file=sys.stderr,
        )
        return 1
    metrics_fn, floors_fn, suffix = KINDS[kind]

    failures = []
    print(f"hard bounds on {current_path}:")
    for name, value, bound, ok in floors_fn(current):
        print(f"  {name}: {value:.3f} (bound {bound}) {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"{name}={value:.3f} violates hard bound {bound}")

    baseline_path = latest_history(history_dir, suffix)
    if baseline_path is None:
        print(f"no {suffix} history in {history_dir}; hard bounds only")
    else:
        baseline = json.loads(baseline_path.read_text())
        print(f"vs {baseline_path.name}:")
        failures.extend(compare(current, baseline, metrics_fn))

    if failures:
        for failure in failures:
            print(f"perf gate: {failure}", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
