"""Table II: latency as a function of kernel size (reconfigurability).

Paper: Conv(kxk, 64) @ 32x32 costs 0.9479 / 0.95 / 0.9677 / 0.9839 ms
for k = 3 / 5 / 7 / 11 — nearly flat despite ~13x more MACs at 11x11,
because the prototype is transfer/driver-bound.  The PE-level cost of a
kernel application does grow (4 -> 45 cycles), which is what the
architectural column shows.
"""

import pytest

from repro.eval import render_table, table2_experiment

PAPER = {3: 0.9479, 5: 0.95, 7: 0.9677, 11: 0.9839}


def test_tab2_kernel_size_sweep(benchmark):
    rows = benchmark.pedantic(table2_experiment, rounds=1, iterations=1)

    print("\n--- Table II (latency vs kernel size) ---")
    for row in rows:
        k = int(row["layer"].split("(")[1].split("x")[0])
        row["paper_ms"] = PAPER[k]
    print(
        render_table(
            rows, ["layer", "output_size", "paper_ms", "latency_ms", "kernel_cycles"]
        )
    )

    for row in rows:
        k = int(row["layer"].split("(")[1].split("x")[0])
        assert row["latency_ms"] == pytest.approx(PAPER[k], rel=0.05)

    latencies = [r["latency_ms"] for r in rows]
    assert latencies == sorted(latencies), "latency grows with kernel size"
    assert latencies[-1] / latencies[0] < 1.10, "but only weakly (transfer-bound)"
    assert [r["kernel_cycles"] for r in rows] == [4, 11, 22, 45]
