"""The machine-readable contract of ``BENCH_engines.json``.

CI uploads the artifact and downstream tooling (plus successive PRs
tracking the wall-clock trajectory) parse it, so the shape is asserted
in two places from this single definition: inside the benchmark that
writes the record, and by ``check_bench_schema.py`` as a standalone CI
step over the emitted file — schema drift fails the job instead of
being discovered broken later.  ``compare_bench.py`` reads the same
record shape when gating the current run against ``history/``.
"""

TOP_LEVEL_KEYS = (
    "benchmark",
    "scenario",
    "engines",
    "batched_speedup_vs_dense",
    "auto_vs_best_fixed",
    "batch16_wall_clock_ms",
    "dvs",
    "python",
    "machine",
)

SCENARIO_KEYS = ("model", "width", "timesteps", "batch", "input")

ENGINE_NAMES = {"dense", "event", "batched", "event-batched", "auto"}

DVS_SCENARIO_KEYS = ("model", "timesteps", "batch", "input", "input_density")

DVS_ENGINE_NAMES = {"batched", "event-batched", "auto"}

DVS_KEYS = (
    "scenario",
    "engines",
    "event_batched_speedup_vs_batched",
    "auto_vs_best_fixed",
    "logits_bitwise_vs_batched",
)

PROFILE_ROW_KEYS = (
    "name",
    "kind",
    "backend",
    "wall_clock_ms",
    "density",
    "synaptic_ops",
)

PROFILE_BACKENDS = ("gemm", "event", "event-batched", "stepped")


def assert_engines_schema(record: dict) -> None:
    """Raise AssertionError where ``record`` violates the contract."""
    for key in TOP_LEVEL_KEYS:
        assert key in record, f"missing top-level key {key!r}"
    assert record["benchmark"] == "engines_wall_clock"
    scenario = record["scenario"]
    for key in SCENARIO_KEYS:
        assert key in scenario, f"missing scenario key {key!r}"
    engines = record["engines"]
    assert set(engines) >= ENGINE_NAMES
    for name, entry in engines.items():
        for key in ("wall_clock_ms", "synaptic_ops", "overall_spike_rate"):
            assert isinstance(entry[key], (int, float)), f"{name}.{key}"
        assert isinstance(entry["prediction"], int), f"{name}.prediction"
        assert isinstance(
            entry["logits_max_abs_diff_vs_dense"], (int, float)
        ), f"{name}.logits_max_abs_diff_vs_dense"
    profile = engines["auto"]["profile"]
    assert isinstance(profile, list) and profile, "auto profile missing"
    for row in profile:
        for key in PROFILE_ROW_KEYS:
            assert key in row, f"profile row missing {key!r}"
        assert row["backend"] in PROFILE_BACKENDS, row["backend"]
        assert 0.0 <= row["density"] <= 1.0
    assert isinstance(record["auto_vs_best_fixed"], (int, float))
    dvs = record["dvs"]
    for key in DVS_KEYS:
        assert key in dvs, f"missing dvs key {key!r}"
    for key in DVS_SCENARIO_KEYS:
        assert key in dvs["scenario"], f"missing dvs scenario key {key!r}"
    assert 0.0 < dvs["scenario"]["input_density"] < 0.05, (
        "the DVS scenario must sit in the <5% density regime"
    )
    assert set(dvs["engines"]) >= DVS_ENGINE_NAMES
    for name, entry in dvs["engines"].items():
        for key in ("wall_clock_ms", "synaptic_ops"):
            assert isinstance(entry[key], (int, float)), f"dvs {name}.{key}"
    assert isinstance(dvs["event_batched_speedup_vs_batched"], (int, float))
    assert isinstance(dvs["auto_vs_best_fixed"], (int, float))
    assert dvs["logits_bitwise_vs_batched"] is True
