"""The machine-readable contracts of the ``BENCH_*.json`` artifacts.

CI uploads the artifacts and downstream tooling (plus successive PRs
tracking the perf trajectory) parse them, so each shape is asserted in
two places from this single definition: inside the benchmark that
writes the record, and by ``check_bench_schema.py`` as a standalone CI
step over the emitted file — schema drift fails the job instead of
being discovered broken later.  ``compare_bench.py`` reads the same
record shapes when gating the current run against ``history/``.

Two artifact kinds exist, distinguished by ``record["benchmark"]``:
``engines_wall_clock`` (``BENCH_engines.json``, the engine-speedup
story) and ``serving_load`` (``BENCH_serving.json``, the serving
layer's throughput, tail latency and failure semantics).
:func:`assert_bench_schema` dispatches on the kind.
"""

TOP_LEVEL_KEYS = (
    "benchmark",
    "scenario",
    "engines",
    "batched_speedup_vs_dense",
    "auto_vs_best_fixed",
    "batch16_wall_clock_ms",
    "dvs",
    "planner",
    "python",
    "machine",
)

SCENARIO_KEYS = ("model", "width", "timesteps", "batch", "input")

ENGINE_NAMES = {"dense", "event", "batched", "event-batched", "auto"}

DVS_SCENARIO_KEYS = ("model", "timesteps", "batch", "input", "input_density")

DVS_ENGINE_NAMES = {"batched", "event-batched", "auto"}

DVS_KEYS = (
    "scenario",
    "engines",
    "event_batched_speedup_vs_batched",
    "auto_vs_best_fixed",
    "logits_bitwise_vs_batched",
)

PROFILE_ROW_KEYS = (
    "name",
    "kind",
    "backend",
    "source",
    "wall_clock_ms",
    "predicted_ms",
    "density",
    "synaptic_ops",
)

PROFILE_BACKENDS = ("gemm", "event", "event-batched", "stepped")

#: Planner provenance a profile row may carry ("" on neuron rows and
#: fixed-backend engines).
PROFILE_SOURCES = ("", "raced", "cost-model", "re-planned")

#: The Planner-v2 section: cold-start calibration cost with full kernel
#: racing vs a fitted cost model, and the quality of the predicted plan.
PLANNER_KEYS = (
    "calibration_ms_racing",
    "calibration_ms_cost_model",
    "calibration_speedup",
    "model_plan_vs_best_fixed",
    "plan_source",
    "cost_model",
)


def assert_engines_schema(record: dict) -> None:
    """Raise AssertionError where ``record`` violates the contract."""
    for key in TOP_LEVEL_KEYS:
        assert key in record, f"missing top-level key {key!r}"
    assert record["benchmark"] == "engines_wall_clock"
    scenario = record["scenario"]
    for key in SCENARIO_KEYS:
        assert key in scenario, f"missing scenario key {key!r}"
    engines = record["engines"]
    assert set(engines) >= ENGINE_NAMES
    for name, entry in engines.items():
        for key in ("wall_clock_ms", "synaptic_ops", "overall_spike_rate"):
            assert isinstance(entry[key], (int, float)), f"{name}.{key}"
        assert isinstance(entry["prediction"], int), f"{name}.prediction"
        assert isinstance(
            entry["logits_max_abs_diff_vs_dense"], (int, float)
        ), f"{name}.logits_max_abs_diff_vs_dense"
    profile = engines["auto"]["profile"]
    assert isinstance(profile, list) and profile, "auto profile missing"
    for row in profile:
        for key in PROFILE_ROW_KEYS:
            assert key in row, f"profile row missing {key!r}"
        assert row["backend"] in PROFILE_BACKENDS, row["backend"]
        assert row["source"] in PROFILE_SOURCES, row["source"]
        assert 0.0 <= row["density"] <= 1.0
    assert isinstance(record["auto_vs_best_fixed"], (int, float))
    planner = record["planner"]
    for key in PLANNER_KEYS:
        assert key in planner, f"missing planner key {key!r}"
    for key in (
        "calibration_ms_racing",
        "calibration_ms_cost_model",
        "calibration_speedup",
        "model_plan_vs_best_fixed",
    ):
        value = planner[key]
        assert isinstance(value, (int, float)) and value > 0, f"planner.{key}"
    assert planner["plan_source"] == "cost-model", (
        "the predicted cold start must compile its plan from the model, "
        f"not {planner['plan_source']!r}"
    )
    assert planner["cost_model"]["plan_ready"] is True
    dvs = record["dvs"]
    for key in DVS_KEYS:
        assert key in dvs, f"missing dvs key {key!r}"
    for key in DVS_SCENARIO_KEYS:
        assert key in dvs["scenario"], f"missing dvs scenario key {key!r}"
    assert 0.0 < dvs["scenario"]["input_density"] < 0.05, (
        "the DVS scenario must sit in the <5% density regime"
    )
    assert set(dvs["engines"]) >= DVS_ENGINE_NAMES
    for name, entry in dvs["engines"].items():
        for key in ("wall_clock_ms", "synaptic_ops"):
            assert isinstance(entry[key], (int, float)), f"dvs {name}.{key}"
    assert isinstance(dvs["event_batched_speedup_vs_batched"], (int, float))
    assert isinstance(dvs["auto_vs_best_fixed"], (int, float))
    assert dvs["logits_bitwise_vs_batched"] is True


# ----------------------------------------------------------------------
# BENCH_serving.json: the serving-load contract
# ----------------------------------------------------------------------
SERVING_TOP_LEVEL_KEYS = (
    "benchmark",
    "scenario",
    "throughput",
    "latency_ms",
    "robustness",
    "pool",
    "counters",
    "python",
    "machine",
)

SERVING_SCENARIO_KEYS = (
    "model",
    "input_shape",
    "timesteps",
    "engine",
    "max_batch",
    "serial_requests",
    "concurrency",
    "concurrent_requests",
)

SERVING_THROUGHPUT_KEYS = (
    "sequential_rps",
    "concurrent_rps",
    "batching_throughput_gain",
)

SERVING_OVERLOAD_KEYS = (
    "attempted",
    "ok",
    "shed",
    "deadline_rejected",
    "unhandled",
)

SERVING_BREAKER_KEYS = ("trips", "recoveries", "worker_restarts", "recovered")

#: The process-pool scale-out section.  ``gate_eligible`` records
#: whether the runner had enough cores (>=4) for the 2x scaling floor
#: to be meaningful; on eligible runners the floor is enforced here
#: too, so a pool regression can't hide behind a small local box.
SERVING_POOL_KEYS = (
    "replicas",
    "cores",
    "gate_eligible",
    "start_method",
    "single_worker_rps",
    "pool_rps",
    "pool_scaling_gain",
    "bit_identical_vs_single_worker",
    "leaked_segments",
)

MIN_POOL_SCALING_GAIN = 2.0


def assert_serving_schema(record: dict) -> None:
    """Raise AssertionError where ``record`` violates the contract."""
    for key in SERVING_TOP_LEVEL_KEYS:
        assert key in record, f"missing top-level key {key!r}"
    assert record["benchmark"] == "serving_load"
    scenario = record["scenario"]
    for key in SERVING_SCENARIO_KEYS:
        assert key in scenario, f"missing scenario key {key!r}"
    throughput = record["throughput"]
    for key in SERVING_THROUGHPUT_KEYS:
        value = throughput.get(key)
        assert isinstance(value, (int, float)) and value > 0, f"throughput.{key}"
    latency = record["latency_ms"]
    for key in ("p50", "p99"):
        assert isinstance(latency.get(key), (int, float)), f"latency_ms.{key}"
    assert latency["p99"] >= latency["p50"] >= 0.0
    robustness = record["robustness"]
    overload = robustness["overload"]
    for key in SERVING_OVERLOAD_KEYS:
        assert isinstance(overload.get(key), int), f"overload.{key}"
    assert overload["unhandled"] == 0, (
        "overload produced answers outside {200, 429, 504}"
    )
    assert overload["ok"] >= 1
    assert overload["shed"] + overload["deadline_rejected"] >= 1, (
        "a 2x overload run must shed or deadline-reject some load"
    )
    breaker = robustness["breaker"]
    for key in SERVING_BREAKER_KEYS:
        assert key in breaker, f"breaker.{key}"
    assert breaker["trips"] >= 1, "the hung-worker phase must trip the breaker"
    assert breaker["recoveries"] >= 1, "the breaker must recover via a probe"
    assert breaker["worker_restarts"] >= 1, "the wedged slot must be rebuilt"
    assert breaker["recovered"] is True
    assert robustness["bit_identical_serial_responses"] is True
    assert robustness["degraded_prefix_consistent"] is True
    drain = robustness["drain"]
    assert drain["flushed"] is True and drain["inflight_completed"] is True
    pool = record["pool"]
    for key in SERVING_POOL_KEYS:
        assert key in pool, f"missing pool key {key!r}"
    assert isinstance(pool["replicas"], int) and pool["replicas"] >= 2
    assert isinstance(pool["cores"], int) and pool["cores"] >= 1
    assert pool["start_method"] in ("fork", "spawn")
    for key in ("single_worker_rps", "pool_rps", "pool_scaling_gain"):
        assert isinstance(pool[key], (int, float)) and pool[key] > 0, f"pool.{key}"
    assert pool["bit_identical_vs_single_worker"] is True, (
        "pool responses must be bit-identical to the single-worker path"
    )
    assert pool["leaked_segments"] == 0, (
        "the pool drain left shared-memory segments behind"
    )
    if pool["gate_eligible"]:
        assert pool["pool_scaling_gain"] >= MIN_POOL_SCALING_GAIN, (
            f"pool scaling gain {pool['pool_scaling_gain']} < "
            f"{MIN_POOL_SCALING_GAIN} on a {pool['cores']}-core runner"
        )
    assert isinstance(record["counters"], dict)


# ----------------------------------------------------------------------
# Kind dispatch
# ----------------------------------------------------------------------
BENCH_KINDS = {
    "engines_wall_clock": assert_engines_schema,
    "serving_load": assert_serving_schema,
}


def assert_bench_schema(record: dict) -> None:
    """Validate any ``BENCH_*.json`` record by its ``benchmark`` kind."""
    kind = record.get("benchmark")
    assert kind in BENCH_KINDS, (
        f"unknown benchmark kind {kind!r}; expected one of {sorted(BENCH_KINDS)}"
    )
    BENCH_KINDS[kind](record)
