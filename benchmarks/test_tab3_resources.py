"""Table III: FPGA resource utilisation of the SIA on the PYNQ-Z2."""

import pytest

from repro.eval import render_table, table3_experiment

PAPER = {
    "LUT": 11932,
    "FF": 8157,
    "DSP": 17,
    "BRAM": 95,
    "LUTRAM": 158,
    "BUFG": 1,
}


def test_tab3_resource_utilization(benchmark):
    rows = benchmark.pedantic(table3_experiment, rounds=3, iterations=1)

    print("\n--- Table III (FPGA resource utilisation) ---")
    for row in rows:
        row["paper"] = PAPER[row["parameter"]]
    print(render_table(rows, ["parameter", "paper", "utilized", "available", "percentage"]))

    for row in rows:
        assert row["utilized"] == PAPER[row["parameter"]], row["parameter"]

    by_name = {r["parameter"]: r for r in rows}
    assert by_name["LUT"]["percentage"] == pytest.approx(22.43, abs=0.02)
    assert by_name["BRAM"]["percentage"] == pytest.approx(67.86, abs=0.02)
    # The headline: DSP-frugal design (17 of 220).
    assert by_name["DSP"]["percentage"] < 10.0
