"""Table I: layer-wise latency of ResNet-18 and VGG-11 on the PYNQ-Z2.

Regenerates every row with the calibrated latency model on the paper's
full-width layer geometry.  Checks: row values within tolerance, the
equal-latency-per-stage observation, and the FC >> conv anomaly.
"""

import pytest

from repro.eval import table1_experiment

PAPER_RESNET = {
    ("Conv (3x3,64)", "32x32"): 4.73,
    ("Conv (3x3,128)", "16x16"): 3.58,
    ("Conv (3x3,256)", "8x8"): 3.58,
    ("Conv (3x3,512)", "4x4"): 3.57,
    ("FC (512)", "512x10"): 58.929,
}
PAPER_VGG = {
    ("Conv (3x3,64)", "32x32"): 0.94,
    ("Conv (3x3,128)", "16x16"): 0.89,
    ("Conv (3x3,256)", "8x8"): 2.68,
    ("Conv (3x3,512)", "4x4"): 2.67,
    ("FC (512)", "512x10"): 58.72,
}


def _show(name, rows, paper):
    print(f"\n--- Table I ({name}) ---")
    print(f"{'layer group':<22}{'size':>10}{'paper ms':>10}{'measured ms':>13}")
    for row in rows:
        key = (row["label"], row["output_size"])
        paper_ms = paper.get(key, float("nan"))
        label = f"{row['label']} x{row['count']}"
        print(
            f"{label:<22}{row['output_size']:>10}{paper_ms:>10.3f}"
            f"{row['latency_ms']:>13.3f}"
        )


def test_tab1_layer_latency(benchmark):
    result = benchmark.pedantic(table1_experiment, rounds=1, iterations=1)

    _show("ResNet-18", result["resnet18"], PAPER_RESNET)
    _show("VGG-11", result["vgg11"], PAPER_VGG)

    resnet = {(r["label"], r["output_size"]): r["latency_ms"] for r in result["resnet18"]}
    for key, paper_ms in PAPER_RESNET.items():
        assert resnet[key] == pytest.approx(paper_ms, rel=0.25), key

    vgg = {(r["label"], r["output_size"]): r["latency_ms"] for r in result["vgg11"]}
    assert vgg[("FC (512)", "512x10")] == pytest.approx(58.72, rel=0.05)

    # The FC anomaly: the classifier costs >> any conv group.
    for net, rows in result.items():
        fc_ms = [r["latency_ms"] for r in rows if r["label"].startswith("FC")][0]
        conv_ms = max(
            r["latency_ms"] / r["count"] for r in rows if r["label"].startswith("Conv")
        )
        assert fc_ms > 20 * conv_ms, net
