"""Setup shim so `python setup.py develop` works offline (no `wheel` pkg).

Normal installs should use `pip install -e .`; this file exists because
the reproduction environment has no network and no wheel package, which
pip's editable-install path requires.
"""

from setuptools import setup

setup()
