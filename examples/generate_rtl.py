"""Emit the Verilog skeletons for the SIA datapath blocks.

The RTL is generated from the same :class:`ArchConfig` that drives the
simulators and models, so the mux counts, operand widths and memory
depths always agree with the published architecture.  Also prints the
configuration-register programme (the PS->PL driver ABI) for the first
two layers of a mapped VGG-11.

Run:
    python examples/generate_rtl.py [output_dir]
"""

import sys

from repro.eval import build_geometry_network
from repro.hw import PYNQ_Z2
from repro.hw.isa import encode_network
from repro.hw.rtl import write_rtl


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "generated_rtl"
    written = write_rtl(out_dir, PYNQ_Z2)
    print(f"generated {len(written)} Verilog files under {out_dir}/:")
    for name, path in written.items():
        lines = sum(1 for _ in open(path))
        print(f"  {name:<24} {lines:>4} lines")

    print("\nConfiguration-register programme (first two VGG-11 layers):")
    mapped = build_geometry_network("vgg11", width=1.0)
    configs = [l.config for l in mapped.layers]
    for idx, writes in encode_network(configs, timesteps=8)[:2]:
        print(f"\nlayer {idx} ({mapped.layers[idx].name}):")
        for w in writes:
            print(f"  reg[0x{w.address:02x}] <= 0x{w.value:08x}")


if __name__ == "__main__":
    main()
