"""Event-driven sparsity -> datapath activity -> power, on the SIA models.

The SNN argument for energy efficiency: computation happens only where
spikes are.  This example sweeps input sparsity through the cycle model
and shows cycles and estimated power tracking the spike rate, ending
with the FPGA-vs-ASIC energy-efficiency comparison (paper §V).

Run:
    python examples/event_driven_energy.py
"""

import numpy as np

from repro.eval import render_table
from repro.hw import PYNQ_Z2, SpikingCore
from repro.hw.asic import AsicProjection
from repro.hw.power import PowerModel


def sparsity_sweep() -> None:
    rng = np.random.default_rng(0)
    core_sparse = SpikingCore(PYNQ_Z2, event_driven=True)
    core_dense = SpikingCore(PYNQ_Z2, event_driven=False)
    power = PowerModel()
    weights = rng.integers(-128, 128, size=(64, 16, 3, 3))

    rows = []
    for rate in (0.02, 0.05, 0.12, 0.25, 0.5, 1.0):
        spikes = (rng.random((16, 16, 16)) < rate).astype(np.int64)
        _, sparse = core_sparse.conv_timestep(spikes, weights, padding=1)
        _, dense = core_dense.conv_timestep(spikes, weights, padding=1)
        activity = sparse.segment_activity
        rows.append(
            {
                "spike_rate": rate,
                "active_segments": round(activity, 3),
                "cycles": sparse.cycles,
                "cycles_dense": dense.cycles,
                "saving": f"{1 - sparse.cycles / dense.cycles:.1%}",
                "board_watts": round(power.total_watts(activity=activity), 3),
            }
        )
    print("Event-driven cycle/power scaling with spike rate "
          "(Conv(3x3,64), 16 channels @ 16x16):")
    print(
        render_table(
            rows,
            ["spike_rate", "active_segments", "cycles", "cycles_dense", "saving", "board_watts"],
        )
    )
    print(
        f"\nAt the paper's observed rates (~0.12 ResNet / ~0.16 VGG) the "
        f"event-driven PE array skips roughly two thirds of its kernel-row "
        f"cycles."
    )


def asic_story() -> None:
    print("\nFPGA prototype vs 40 nm ASIC projection:")
    fpga_gops, fpga_watts = PYNQ_Z2.peak_gops, 1.54
    asic = AsicProjection().report()
    rows = [
        {
            "target": "PYNQ-Z2 @ 100 MHz",
            "gops": fpga_gops,
            "watts": fpga_watts,
            "gops_per_watt": round(fpga_gops / fpga_watts, 2),
        },
        {
            "target": "TSMC 40 nm @ 500 MHz",
            "gops": asic.gops,
            "watts": asic.power_watts,
            "gops_per_watt": round(asic.gops_per_watt, 2),
        },
    ]
    print(render_table(rows, ["target", "gops", "watts", "gops_per_watt"]))
    print(
        "(the paper reports 25 GOPS/W measured on FPGA and targets a future "
        "600 GOPS/W ASIC; the projection above reproduces its 192 GOPS / "
        "11 mm^2 / 2.17 W synthesis estimate)"
    )


if __name__ == "__main__":
    sparsity_sweep()
    asic_story()
