"""Quickstart: the paper's three-stage pipeline end to end, in ~2 minutes.

Trains a width-scaled VGG-11 on the synthetic CIFAR stand-in, fine-tunes
it with L=2 quantised ReLUs and INT8 weights, converts it to a spiking
network, and prints the accuracy-vs-timesteps curve (the Fig. 9 shape).

Run:
    python examples/quickstart.py
"""

from repro.data import SyntheticCIFAR
from repro.pipeline import TrainConfig, run_conversion_pipeline


def main() -> None:
    print("Loading synthetic CIFAR-10 stand-in (3x32x32, 10 classes)...")
    dataset = SyntheticCIFAR(
        num_train=800, num_test=300, noise=1.0, class_overlap=0.55, seed=0
    )

    print("Running the 3-stage co-optimisation pipeline (VGG-11, width=0.125)...")
    result = run_conversion_pipeline(
        "vgg11",
        dataset,
        width=0.125,
        levels=2,              # the paper's L=2 quantised ReLU
        timesteps=8,           # the paper's headline latency
        max_timesteps=16,
        ann_config=TrainConfig(epochs=4, verbose=True),
        finetune_config=TrainConfig(epochs=3, lr=5e-4, verbose=True),
        progress=print,
        engine="event",        # sparse event propagation (see examples/engine_comparison.py)
    )

    print()
    print(f"FP32 ANN accuracy:        {result.ann_accuracy:.4f}")
    print(f"Quantised ANN accuracy:   {result.quant_accuracy:.4f}")
    print(f"SNN accuracy at T=8:      {result.snn_accuracy:.4f}")
    print(f"Learned layer thresholds: "
          + " ".join(f"{t:.2f}" for t in result.thresholds))
    print()
    print("Accuracy vs timesteps (paper Fig. 9 shape):")
    print("  T:   " + " ".join(f"{t:5d}" for t in range(1, len(result.snn_accuracy_per_step) + 1)))
    print("  acc: " + " ".join(f"{a:.3f}" for a in result.snn_accuracy_per_step))
    gap = result.ann_accuracy - result.snn_accuracy
    print(f"\nANN-to-SNN gap at T=8: {gap * 100:.2f}% "
          f"(paper: <1% on CIFAR-10 at full width)")


if __name__ == "__main__":
    main()
