"""Event-driven input path: DVS-style streams straight into the SIA.

The paper's platform supports two input modes (§IV): frame conversion
on the PS, or event-driven data streams transferred directly to the
accelerator.  This example exercises the second mode end to end on a
synthetic moving-bar DVS dataset: a small spiking classifier is trained
directly with surrogate gradients on event frames, and the event
streams are also pushed through the cycle-accurate spiking core to show
the sparsity dividend.

Run:
    python examples/event_driven_input.py
"""

import numpy as np

from repro.data.events import SyntheticDVS, accumulate_events
from repro.eval import render_table
from repro.hw import PYNQ_Z2, SpikingCore
from repro.snn import SurrogateSNN, evaluate_surrogate_snn, train_surrogate_snn
from repro.tensor import Tensor


def train_on_events() -> None:
    print("Generating a synthetic DVS dataset (4 motion classes)...")
    dvs = SyntheticDVS(num_train=400, num_test=80, timesteps=16, seed=0)
    print(f"mean event rate: {dvs.mean_event_rate():.4f} events/pixel/step")

    # Re-bin the 16-step streams into 4 accumulation frames and stack
    # (bin, polarity) as 8 input channels — motion direction is then
    # encoded in the channel-wise displacement of the event mass.
    def to_frames(samples):
        xs, ys = [], []
        for s in samples:
            binned = accumulate_events(s.events, bins=4)
            xs.append(binned.reshape(4 * 2, 32, 32))
            ys.append(s.label)
        return np.stack(xs).astype(np.float32), np.array(ys, np.int64)

    train_x, train_y = to_frames(dvs.train)
    test_x, test_y = to_frames(dvs.test)

    print("Training a surrogate-gradient SNN on event frames...")
    model = SurrogateSNN(in_channels=8, num_classes=4, channels=(32, 64), seed=0)
    losses = train_surrogate_snn(
        model, train_x, train_y, epochs=12, timesteps=4, lr=5e-3, batch_size=50
    )
    acc = evaluate_surrogate_snn(model, test_x, test_y, timesteps=4)
    print(f"losses: {' '.join(f'{l:.3f}' for l in losses)}")
    print(f"test accuracy on 4 motion classes: {acc:.3f}")
    return dvs


def stream_through_core(dvs: SyntheticDVS) -> None:
    print("\nStreaming raw events through the event-driven spiking core:")
    rng = np.random.default_rng(1)
    weights = rng.integers(-128, 128, size=(64, 2, 3, 3))
    sparse = SpikingCore(PYNQ_Z2, event_driven=True)
    dense = SpikingCore(PYNQ_Z2, event_driven=False)

    rows = []
    for sample in dvs.test[:4]:
        s_cycles = d_cycles = 0
        for t in range(sample.timesteps):
            plane = sample.events[t].astype(np.int64)
            _, s_stats = sparse.conv_timestep(plane, weights, padding=1)
            _, d_stats = dense.conv_timestep(plane, weights, padding=1)
            s_cycles += s_stats.cycles
            d_cycles += d_stats.cycles
        rows.append(
            {
                "label": sample.label,
                "event_rate": round(sample.event_rate, 4),
                "event_driven_cycles": s_cycles,
                "dense_cycles": d_cycles,
                "saving": f"{1 - s_cycles / d_cycles:.1%}",
            }
        )
    print(render_table(rows, ["label", "event_rate", "event_driven_cycles",
                              "dense_cycles", "saving"]))
    print("sparse DVS streams are where the event-driven PE design pays off "
          "hardest — most kernel-row cycles are skipped entirely.")


def coo_dataflow(dvs: SyntheticDVS) -> None:
    """The first-class COO path: a SpikeStream end to end.

    The whole test split travels as one coordinate batch — the exact
    event-driven payload the PS would transfer to the SIA — and the
    event engine carries those coordinates across the layers, so op
    accounting and density profiling come from event coordinates, never
    from scanning densified planes.
    """
    import numpy as np

    from repro import nn
    from repro.snn import SpikingNetwork, convert_to_snn
    from repro.tensor import no_grad

    stream, labels = dvs.spike_stream("test")
    per_step = stream.events_per_step()
    print("\nCOO SpikeStream over the test split:")
    print(
        f"  {stream.num_events} events over {stream.batch_size} samples x "
        f"{stream.timesteps} steps (density {stream.density:.4f})"
    )
    print(f"  events per step: {[int(v) for v in per_step[:8]]}...")

    # A small converted spiking classifier over the 2 polarity channels.
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Conv2d(2, 16, 3, padding=1, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(16 * 16 * 16, dvs.num_classes, rng=rng),
    )
    model.train()
    with no_grad():
        with_frames = stream.to_dense()  # (T, N, 2, H, W), warm the BN stats
        for t in range(2):
            model(Tensor(with_frames[t]))
    model.eval()
    convert_to_snn(model)

    network = SpikingNetwork(model, engine="event")
    network.forward(stream)  # T comes from the stream itself
    stats = network.last_run_stats
    trace = stats.spike_trace()
    print(
        f"  event engine on the stream: {stats.total_synaptic_ops:,} performed "
        f"ops vs {stats.total_dense_synaptic_ops:,} dense "
        f"(saving {stats.synaptic_op_saving:.1%})"
    )
    print(
        "  measured spike trace for the hw models: "
        + ", ".join(f"{d:.3f}" for d in trace.densities)
    )


if __name__ == "__main__":
    dataset = train_on_events()
    stream_through_core(dataset)
    coo_dataflow(dataset)
