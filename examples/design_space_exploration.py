"""The 'architecture design methodology': explore, constrain, choose.

Reproduces the paper's design flow as an executable loop: sweep PE-array
geometry, batch-norm lane count and clock frequency; score each
candidate with the calibrated resource/throughput/power models; reject
candidates that do not fit the PYNQ-Z2; extract the Pareto frontier
(throughput vs fabric area vs power); and situate the paper's shipped
8x8/16-lane/100 MHz configuration in the space.

Run:
    python examples/design_space_exploration.py
"""

from repro.eval import render_table
from repro.hw.dse import DesignSpaceExplorer, SweepSpec, paper_design_point


def main() -> None:
    explorer = DesignSpaceExplorer()
    spec = SweepSpec(
        pe_rows=(4, 8, 16),
        pe_cols=(4, 8, 16),
        bn_lanes=(8, 16, 32),
        clock_mhz=(50, 100, 150, 200),
    )
    points = explorer.sweep(spec)
    feasible = [p for p in points if p.fits]
    print(f"swept {len(points)} candidates; {len(feasible)} fit the PYNQ-Z2\n")

    print("Throughput leaders:")
    rows = [
        {
            "design": p.label, "gops": p.gops, "gops_per_watt": p.gops_per_watt,
            "luts": p.luts, "dsps": p.dsps, "brams": p.brams, "watts": p.power_watts,
        }
        for p in sorted(feasible, key=lambda p: -p.gops)[:8]
    ]
    print(render_table(rows, ["design", "gops", "gops_per_watt", "luts", "dsps",
                              "brams", "watts"]))

    front = explorer.pareto_front(points)
    print("\nPareto frontier (max GOPS, min LUTs, min power):")
    rows = [
        {
            "design": p.label, "gops": p.gops, "luts": p.luts,
            "watts": p.power_watts, "gops_per_dsp": p.gops_per_dsp,
        }
        for p in front
    ]
    print(render_table(rows, ["design", "gops", "luts", "watts", "gops_per_dsp"]))

    paper = paper_design_point()
    print(f"\nThe paper's configuration: {paper.label}")
    print(
        f"  {paper.gops} GOPS, {paper.gops_per_watt} GOPS/W, "
        f"{paper.gops_per_dsp} GOPS/DSP, {paper.luts} LUTs, "
        f"{paper.dsps} DSPs, {paper.brams} BRAMs -> fits: {paper.fits}"
    )
    print(
        "  (the shipped point favours DSP frugality: only the 16 BN lanes "
        "use DSP slices, which is what buys the 4.5x GOPS/DSP headline of "
        "Table IV)"
    )

    best_eff = explorer.best(points, "gops_per_watt")
    best_gops = explorer.best(points, "gops")
    print(f"\nbest GOPS/W in space: {best_eff.label} ({best_eff.gops_per_watt})")
    print(f"best GOPS in space:   {best_gops.label} ({best_gops.gops})")
    print(
        "\ncaveat: candidates at 150-200 MHz assume timing closure the "
        "7-series fabric may not meet for this datapath; the explorer "
        "rejects anything above 250 MHz outright."
    )


if __name__ == "__main__":
    main()
