"""Dense vs event-driven vs time-batched vs adaptive SNN engines.

The paper's accelerator is fast because it only pays for spikes that
actually fire.  ``repro.snn.engines`` brings the same structure to the
software simulator: the ``event`` backend propagates only active spike
events, so its synaptic-operation count scales with the observed spike
rate; the ``batched`` backend restructures execution from time-outer to
layer-outer — every stateless layer runs once over a ``(T*N, ...)``
stack; and the ``auto`` backend profiles a calibration run (per-layer
wall clock + observed density) and compiles a cached per-layer plan
that mixes batched GEMM and event gather, the same
measure-then-specialise loop the paper's mapper applies in hardware.
``--workers K`` additionally shards each batch across K forked
processes or threads (``--shard-mode``); statistics are merged and
match a single-worker run.

This example converts a small VGG-11, runs the same batch through all
backends and prints the agreement between their logits together with
per-backend spike rates, synaptic-op counts and wall clock.
``--profile`` appends each backend's per-layer wall-clock profile
(``RunStats.profile_table()``).

``--density D`` switches to the low-density COO crossover scenario:
a DVS-style front end (64x64, 2 polarities, batch 8) fed a Bernoulli
`SpikeStream` at exactly density ``D``, racing the dense-GEMM
``batched`` engine against the COO-native ``event-batched`` backend
(and ``auto``) so the wall-clock crossover measured in
``BENCH_engines.json`` can be reproduced at any density from the
command line.

Run:
    python examples/engine_comparison.py
    python examples/engine_comparison.py --workers 2 --shard-mode thread
    python examples/engine_comparison.py --profile
    python examples/engine_comparison.py --density 0.003
    python examples/engine_comparison.py --density 0.02   # past crossover
"""

import argparse
import time

import numpy as np

from repro.data import SyntheticCIFAR
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.spikes import SpikeStream

TIMESTEPS = 8


def run_density_scenario(density: float, profile: bool) -> None:
    """Race batched vs event-batched vs auto on a sparse COO stream."""
    from repro import nn
    from repro.tensor import Tensor, no_grad

    height, width, batch = 64, 64, 8
    print(
        f"Low-density crossover scenario: {height}x{width}x2 stream, "
        f"batch {batch}, T={TIMESTEPS}, input density {density:.4f}"
    )
    rng = np.random.default_rng(7)
    model = nn.Sequential(
        nn.Conv2d(2, 8, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(8),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(8, 16, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(16),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(16, 32, 3, padding=1, bias=False, rng=rng),
        nn.BatchNorm2d(32),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.AvgPool2d(4),
        nn.Flatten(),
        nn.Linear(32 * (height // 16) * (width // 16), 4, rng=rng),
    )
    shape = (batch, 2, height, width)
    warm = (rng.random((4 * TIMESTEPS,) + shape[1:]) < density).astype(
        np.float32
    )
    model.train()
    with no_grad():
        for start in range(0, len(warm), 16):
            model(Tensor(warm[start : start + 16]))
    model.eval()
    convert_to_snn(model)
    stream = SpikeStream.from_dense(
        (rng.random((TIMESTEPS,) + shape) < density).astype(np.float32),
        binary=True,
    )
    print(f"stream: {stream.num_events:,} events ({stream.density:.4%} dense)")

    networks = {
        engine: SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
        for engine in ("batched", "event-batched", "auto")
    }
    logits = {}
    for engine, network in networks.items():
        logits[engine] = network.forward(stream)  # warm-up / calibration
    seconds = {engine: float("inf") for engine in networks}
    for _ in range(12):
        for engine, network in networks.items():
            started = time.perf_counter()
            network.forward(stream)
            seconds[engine] = min(
                seconds[engine], time.perf_counter() - started
            )
    for engine, network in networks.items():
        stats = network.last_run_stats
        print(
            f"\n{engine:>14} engine: {seconds[engine] * 1e3:7.2f} ms"
            f"\n                synaptic ops billed  {stats.total_synaptic_ops:,}"
        )
        if profile:
            print(stats.profile_table())
    speedup = seconds["batched"] / seconds["event-batched"]
    bitwise = np.array_equal(logits["batched"], logits["event-batched"])
    print(
        f"\nevent-batched vs batched: {speedup:.2f}x "
        f"({'wins' if speedup > 1 else 'loses'} at this density), "
        f"logits bitwise identical: {bitwise}"
    )
    print(
        "The crossover sits near 1-2% input density on this substrate: "
        "rerun with --density 0.02 to watch the dense GEMM win again."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="batch shards per inference run in parallel (1 = in-process)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=["auto", "fork", "thread"],
        default="auto",
        dest="shard_mode",
        help="substrate for --workers > 1: forked processes or a thread pool",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print each backend's per-layer wall-clock/density profile",
    )
    parser.add_argument(
        "--density",
        type=float,
        default=None,
        metavar="D",
        help="run the low-density COO crossover scenario at input "
        "density D (e.g. 0.003) instead of the VGG frame comparison",
    )
    args = parser.parse_args()

    if args.density is not None:
        if not 0.0 < args.density <= 1.0:
            parser.error("--density must be in (0, 1]")
        run_density_scenario(args.density, args.profile)
        return

    print("Preparing a converted VGG-11 (width=0.25, 1 warm-up epoch)...")
    dataset = SyntheticCIFAR(num_train=256, num_test=64, noise=0.8, seed=0)
    model = build_quantized_twin("vgg11", width=0.25, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(dataset.train_x, dataset.train_y)
    convert_to_snn(model)

    x = dataset.test_x
    results = {}
    for engine in ("dense", "event", "batched", "auto"):
        network = SpikingNetwork(
            model,
            timesteps=TIMESTEPS,
            engine=engine,
            workers=args.workers,
            shard_mode=args.shard_mode,
        )
        # Warm up caches / BLAS threads on the full batch — for auto
        # this is the calibration pass (plans are keyed by the full
        # input shape), so the timed run executes the compiled plan.
        network.forward(x)
        started = time.perf_counter()
        logits = network.forward(x)
        elapsed = time.perf_counter() - started
        results[engine] = (logits, network.last_run_stats, elapsed)
        stats = network.last_run_stats
        print(
            f"\n{engine:>7} engine: {elapsed * 1e3:7.1f} ms for {len(x)} frames x T={TIMESTEPS}"
            f" (workers={stats.workers})"
            f"\n         synaptic ops        {stats.total_synaptic_ops:,}"
            f"\n         overall spike rate  {stats.overall_spike_rate:.4f}"
        )
        if args.profile:
            print(stats.profile_table())

    dense_logits, _, dense_s = results["dense"]
    event_stats = results["event"][1]
    for engine in ("event", "batched", "auto"):
        logits, _, elapsed = results[engine]
        agreement = float((dense_logits.argmax(1) == logits.argmax(1)).mean())
        print(
            f"\n{engine} vs dense: prediction agreement {agreement:.2%}, "
            f"max |logit diff| {np.abs(dense_logits - logits).max():.2e}, "
            f"speedup {dense_s / elapsed:.2f}x"
        )
    auto_stats = results["auto"][1]
    chosen = {
        layer.name: layer.backend
        for layer in auto_stats.layers
        if layer.kind in ("conv", "linear")
    }
    event_layers = sum(1 for backend in chosen.values() if backend == "event")
    print(
        f"\nauto engine plan: {event_layers}/{len(chosen)} synapse layers "
        f"routed to the event gather, the rest stay on the batched GEMM"
    )
    print(
        f"\nevent-driven op saving: {event_stats.synaptic_op_saving:.1%} "
        f"(the fraction of dense MACs the paper's hardware never executes)"
    )
    print("\nper-layer spike rates (event engine):")
    for idx, rate in enumerate(event_stats.spike_rates(), start=1):
        print(f"  layer {idx:>2}: {rate:.4f}")


if __name__ == "__main__":
    main()
