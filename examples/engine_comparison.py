"""Dense vs event-driven vs time-batched vs adaptive SNN engines.

The paper's accelerator is fast because it only pays for spikes that
actually fire.  ``repro.snn.engines`` brings the same structure to the
software simulator: the ``event`` backend propagates only active spike
events, so its synaptic-operation count scales with the observed spike
rate; the ``batched`` backend restructures execution from time-outer to
layer-outer — every stateless layer runs once over a ``(T*N, ...)``
stack; and the ``auto`` backend profiles a calibration run (per-layer
wall clock + observed density) and compiles a cached per-layer plan
that mixes batched GEMM and event gather, the same
measure-then-specialise loop the paper's mapper applies in hardware.
``--workers K`` additionally shards each batch across K forked
processes or threads (``--shard-mode``); statistics are merged and
match a single-worker run.

This example converts a small VGG-11, runs the same batch through all
backends and prints the agreement between their logits together with
per-backend spike rates, synaptic-op counts and wall clock.
``--profile`` appends each backend's per-layer wall-clock profile
(``RunStats.profile_table()``).

Run:
    python examples/engine_comparison.py
    python examples/engine_comparison.py --workers 2 --shard-mode thread
    python examples/engine_comparison.py --profile
"""

import argparse
import time

import numpy as np

from repro.data import SyntheticCIFAR
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import SpikingNetwork, convert_to_snn

TIMESTEPS = 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="batch shards per inference run in parallel (1 = in-process)",
    )
    parser.add_argument(
        "--shard-mode",
        choices=["auto", "fork", "thread"],
        default="auto",
        dest="shard_mode",
        help="substrate for --workers > 1: forked processes or a thread pool",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print each backend's per-layer wall-clock/density profile",
    )
    args = parser.parse_args()

    print("Preparing a converted VGG-11 (width=0.25, 1 warm-up epoch)...")
    dataset = SyntheticCIFAR(num_train=256, num_test=64, noise=0.8, seed=0)
    model = build_quantized_twin("vgg11", width=0.25, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(dataset.train_x, dataset.train_y)
    convert_to_snn(model)

    x = dataset.test_x
    results = {}
    for engine in ("dense", "event", "batched", "auto"):
        network = SpikingNetwork(
            model,
            timesteps=TIMESTEPS,
            engine=engine,
            workers=args.workers,
            shard_mode=args.shard_mode,
        )
        # Warm up caches / BLAS threads on the full batch — for auto
        # this is the calibration pass (plans are keyed by the full
        # input shape), so the timed run executes the compiled plan.
        network.forward(x)
        started = time.perf_counter()
        logits = network.forward(x)
        elapsed = time.perf_counter() - started
        results[engine] = (logits, network.last_run_stats, elapsed)
        stats = network.last_run_stats
        print(
            f"\n{engine:>7} engine: {elapsed * 1e3:7.1f} ms for {len(x)} frames x T={TIMESTEPS}"
            f" (workers={stats.workers})"
            f"\n         synaptic ops        {stats.total_synaptic_ops:,}"
            f"\n         overall spike rate  {stats.overall_spike_rate:.4f}"
        )
        if args.profile:
            print(stats.profile_table())

    dense_logits, _, dense_s = results["dense"]
    event_stats = results["event"][1]
    for engine in ("event", "batched", "auto"):
        logits, _, elapsed = results[engine]
        agreement = float((dense_logits.argmax(1) == logits.argmax(1)).mean())
        print(
            f"\n{engine} vs dense: prediction agreement {agreement:.2%}, "
            f"max |logit diff| {np.abs(dense_logits - logits).max():.2e}, "
            f"speedup {dense_s / elapsed:.2f}x"
        )
    auto_stats = results["auto"][1]
    chosen = {
        layer.name: layer.backend
        for layer in auto_stats.layers
        if layer.kind in ("conv", "linear")
    }
    event_layers = sum(1 for backend in chosen.values() if backend == "event")
    print(
        f"\nauto engine plan: {event_layers}/{len(chosen)} synapse layers "
        f"routed to the event gather, the rest stay on the batched GEMM"
    )
    print(
        f"\nevent-driven op saving: {event_stats.synaptic_op_saving:.1%} "
        f"(the fraction of dense MACs the paper's hardware never executes)"
    )
    print("\nper-layer spike rates (event engine):")
    for idx, rate in enumerate(event_stats.spike_rates(), start=1):
        print(f"  layer {idx:>2}: {rate:.4f}")


if __name__ == "__main__":
    main()
