"""Dense vs event-driven vs time-batched SNN engines, side by side.

The paper's accelerator is fast because it only pays for spikes that
actually fire.  ``repro.snn.engine`` brings the same structure to the
software simulator: the ``event`` backend propagates only active spike
events, so its synaptic-operation count scales with the observed spike
rate, and the ``batched`` backend restructures execution from
time-outer to layer-outer — every stateless layer runs once over a
``(T*N, ...)`` stack, so wall clock stops paying the T-fold Python and
per-call overhead.  ``--workers K`` additionally shards each batch
across K forked processes (statistics are merged and match a
single-worker run); sharding pays off on multi-core machines — on a
single core the fork overhead makes it a demo, not a speedup.

This example converts a small VGG-11, runs the same batch through all
backends and prints the agreement between their logits together with
per-backend spike rates, synaptic-op counts and wall clock.

Run:
    python examples/engine_comparison.py
    python examples/engine_comparison.py --workers 2
"""

import argparse
import time

import numpy as np

from repro.data import SyntheticCIFAR
from repro.pipeline import build_quantized_twin
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import SpikingNetwork, convert_to_snn

TIMESTEPS = 8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="forked batch shards per inference (1 = in-process)",
    )
    args = parser.parse_args()

    print("Preparing a converted VGG-11 (width=0.25, 1 warm-up epoch)...")
    dataset = SyntheticCIFAR(num_train=256, num_test=64, noise=0.8, seed=0)
    model = build_quantized_twin("vgg11", width=0.25, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(dataset.train_x, dataset.train_y)
    convert_to_snn(model)

    x = dataset.test_x
    results = {}
    for engine in ("dense", "event", "batched"):
        network = SpikingNetwork(
            model, timesteps=TIMESTEPS, engine=engine, workers=args.workers
        )
        network.forward(x[:8])  # warm up caches / BLAS threads
        started = time.perf_counter()
        logits = network.forward(x)
        elapsed = time.perf_counter() - started
        results[engine] = (logits, network.last_run_stats, elapsed)
        stats = network.last_run_stats
        print(
            f"\n{engine:>7} engine: {elapsed * 1e3:7.1f} ms for {len(x)} frames x T={TIMESTEPS}"
            f" (workers={stats.workers})"
            f"\n         synaptic ops        {stats.total_synaptic_ops:,}"
            f"\n         overall spike rate  {stats.overall_spike_rate:.4f}"
        )

    dense_logits, _, dense_s = results["dense"]
    event_stats = results["event"][1]
    for engine in ("event", "batched"):
        logits, _, elapsed = results[engine]
        agreement = float((dense_logits.argmax(1) == logits.argmax(1)).mean())
        print(
            f"\n{engine} vs dense: prediction agreement {agreement:.2%}, "
            f"max |logit diff| {np.abs(dense_logits - logits).max():.2e}, "
            f"speedup {dense_s / elapsed:.2f}x"
        )
    print(
        f"\nevent-driven op saving: {event_stats.synaptic_op_saving:.1%} "
        f"(the fraction of dense MACs the paper's hardware never executes)"
    )
    print("\nper-layer spike rates (event engine):")
    for idx, rate in enumerate(event_stats.spike_rates(), start=1):
        print(f"  layer {idx:>2}: {rate:.4f}")


if __name__ == "__main__":
    main()
