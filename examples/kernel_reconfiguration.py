"""Reconfigurability study: kernel sizes on the PE array (paper Table II).

The PE consumes kernel rows through its three multiplexers, so a KxK
kernel costs K*ceil(K/3)+1 cycles per application.  This example sweeps
kernel sizes on the cycle-accurate PE, cross-checks the vectorised
core, and prints the calibrated PYNQ-Z2 latency next to the paper's
Table II values.

Run:
    python examples/kernel_reconfiguration.py
"""

import numpy as np

from repro.eval import render_table, table2_experiment
from repro.hw import PYNQ_Z2, ProcessingElement, SpikingCore

PAPER_TABLE2_MS = {3: 0.9479, 5: 0.95, 7: 0.9677, 11: 0.9839}


def pe_level_sweep() -> None:
    print("Cycle cost of one kernel application on one PE:")
    rng = np.random.default_rng(0)
    rows = []
    for k in (3, 5, 7, 11):
        spikes = (rng.random((k, k)) < 0.5).astype(np.int64)
        weights = rng.integers(-128, 128, size=(k, k))
        pe_dense = ProcessingElement(PYNQ_Z2, event_driven=False)
        _, dense_cycles = pe_dense.compute_kernel(spikes, weights)
        pe_sparse = ProcessingElement(PYNQ_Z2, event_driven=True)
        _, sparse_cycles = pe_sparse.compute_kernel(spikes, weights)
        rows.append(
            {
                "kernel": f"{k}x{k}",
                "dense_cycles": dense_cycles,
                "event_driven_cycles": sparse_cycles,
                "formula": PYNQ_Z2.kernel_cycles(k),
            }
        )
    print(render_table(rows, ["kernel", "dense_cycles", "event_driven_cycles", "formula"]))


def core_level_sweep() -> None:
    print("\nWhole-layer cycles on the 8x8 core (Conv(kxk,64) @ 32x32, one timestep):")
    rng = np.random.default_rng(1)
    core = SpikingCore(PYNQ_Z2, event_driven=True)
    rows = []
    for k in (3, 5, 7, 11):
        spikes = (rng.random((3, 32, 32)) < 0.25).astype(np.int64)
        weights = rng.integers(-128, 128, size=(64, 3, k, k))
        _, stats = core.conv_timestep(spikes, weights, padding=k // 2)
        rows.append(
            {
                "kernel": f"{k}x{k}",
                "core_cycles": stats.cycles,
                "segment_activity": round(stats.segment_activity, 3),
            }
        )
    print(render_table(rows, ["kernel", "core_cycles", "segment_activity"]))


def board_level_sweep() -> None:
    print("\nCalibrated PYNQ-Z2 wall-clock latency (paper Table II):")
    rows = table2_experiment()
    for row in rows:
        k = int(row["layer"].split("(")[1].split("x")[0])
        row["paper_ms"] = PAPER_TABLE2_MS[k]
    print(render_table(rows, ["layer", "output_size", "paper_ms", "latency_ms"]))
    print(
        "note: board latency is PS-driver-bound, so it grows only ~4% from "
        "3x3 to 11x11 while PE-level cycles grow >10x — that contrast IS the "
        "reconfigurability result."
    )


if __name__ == "__main__":
    pe_level_sweep()
    core_level_sweep()
    board_level_sweep()
