"""Map a converted SNN onto the SIA and run bit-true integer inference.

Shows the hardware half of the co-design: the mapper folds batch-norm
into fixed-point G/H coefficients, expands avg-pooling into the
reconfigurable kernels, quantises weights to INT8, and the accelerator
model runs the whole network in integer arithmetic — then compares
against the float SNN and prints the per-layer execution report plus
the FPGA resource/latency/power story.

Run:
    python examples/accelerator_mapping.py
"""

from repro.data import SyntheticCIFAR
from repro.eval import render_table
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.latency import LatencyModel, group_latencies_like_table1
from repro.hw.power import PowerModel
from repro.hw.resources import ResourceModel, ThroughputModel
from repro.pipeline import TrainConfig, Trainer, build_quantized_twin
from repro.pipeline.conversion import calibrate_quant_steps
from repro.snn import SpikingNetwork, convert_to_snn


def main() -> None:
    dataset = SyntheticCIFAR(
        num_train=600, num_test=200, noise=1.0, class_overlap=0.55, seed=1
    )

    print("Fine-tuning a quantised VGG-11 (width=0.125)...")
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    # Order matters: calibrate the quantiser steps on *trained-ish*
    # activations (a warm-up epoch), then fine-tune with them in place.
    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(dataset.train_x, dataset.train_y)
    calibrate_quant_steps(model, dataset.train_x[:256])
    Trainer(model, TrainConfig(epochs=3, lr=1e-3)).fit(dataset.train_x, dataset.train_y)

    print("Converting to SNN and compiling for the accelerator...")
    convert_to_snn(model)
    mapped = map_network(model, calibration_input=dataset.train_x)
    print(mapped.describe())

    print("\nRunning bit-true integer inference (T=8)...")
    sia = SpikingInferenceAccelerator(mapped)
    snn = SpikingNetwork(model, timesteps=8)
    batch = dataset.test_x
    int_logits, report = sia.run(batch, timesteps=8)
    float_logits = snn.forward(batch, 8)
    agreement = (int_logits.argmax(1) == float_logits.argmax(1)).mean()
    int_acc = (int_logits.argmax(1) == dataset.test_y).mean()
    print(f"integer accuracy: {int_acc:.4f}   agreement with float SNN: {agreement:.4f}")

    print("\nPer-layer execution report:")
    rows = [
        {
            "layer": s.name,
            "core_cycles": s.core_cycles // report.batch_size,
            "agg_cycles": s.aggregation_cycles // report.batch_size,
            "spike_rate": round(s.spike_rate, 4),
        }
        for s in report.layers
    ]
    print(render_table(rows, ["layer", "core_cycles", "agg_cycles", "spike_rate"]))

    print("\nPYNQ-Z2 deployment estimate (full-width geometry uses the same models):")
    latency = LatencyModel()
    configs = [l.config for l in mapped.layers]
    lats = latency.network_latency(configs, timesteps=8)
    groups = group_latencies_like_table1(lats, configs)
    total_ms = sum(g["latency_ms"] for g in groups)
    print(render_table(groups, ["label", "count", "output_size", "latency_ms"]))
    print(f"total network latency: {total_ms:.2f} ms")

    print("\nFPGA resources (Table III):")
    print(ResourceModel().report().render())
    tp = ThroughputModel().report()
    power = PowerModel()
    mean_rate = sum(r.spike_rate for r in report.layers if r.neuron_steps) / max(
        1, sum(1 for r in report.layers if r.neuron_steps)
    )
    print(
        f"\npeak {tp.gops} GOPS | {tp.gops_per_pe} GOPS/PE | "
        f"{tp.gops_per_dsp} GOPS/DSP | {tp.gops_per_watt} GOPS/W"
    )
    print(
        f"board power at observed activity ({mean_rate:.2f} spike rate): "
        f"{power.total_watts(activity=min(1.0, 3 * mean_rate)):.2f} W"
    )


if __name__ == "__main__":
    main()
