"""Configuration-register ABI tests (encode/decode round-trips)."""

import pytest

from repro.hw.config import LayerConfig, LayerKind
from repro.hw.isa import (
    EncodingError,
    MAX_CHANNELS,
    MAX_THRESHOLD,
    REG_FLAGS,
    REG_THRESHOLD,
    RegisterWrite,
    decode_layer,
    encode_layer,
    encode_network,
)


def make_config(**kw):
    defaults = dict(
        kind=LayerKind.CONV, in_channels=64, out_channels=128,
        in_height=32, in_width=32, kernel_size=3, stride=2, padding=1,
        threshold_int=1024, lif_mode=False, leak_shift=4,
    )
    defaults.update(kw)
    return LayerConfig(**defaults)


class TestRoundTrip:
    def test_conv_roundtrip(self):
        cfg = make_config()
        decoded = decode_layer(encode_layer(cfg, timesteps=8))
        assert decoded.kind is LayerKind.CONV
        assert decoded.in_channels == 64
        assert decoded.out_channels == 128
        assert decoded.in_height == decoded.in_width == 32
        assert decoded.kernel_size == 3
        assert decoded.stride == 2
        assert decoded.padding == 1
        assert decoded.threshold_int == 1024
        assert decoded.timesteps == 8
        assert not decoded.lif_mode

    def test_fc_roundtrip(self):
        cfg = LayerConfig(
            kind=LayerKind.FC, in_channels=512, out_channels=10,
            in_height=1, in_width=1, kernel_size=1,
        )
        decoded = decode_layer(encode_layer(cfg))
        assert decoded.kind is LayerKind.FC
        assert decoded.in_channels == 512
        assert decoded.out_channels == 10

    def test_lif_and_leak(self):
        cfg = make_config(lif_mode=True, leak_shift=5)
        decoded = decode_layer(encode_layer(cfg))
        assert decoded.lif_mode
        assert decoded.leak_shift == 5

    def test_flags(self):
        cfg = make_config(has_residual=True)
        decoded = decode_layer(encode_layer(cfg, frame_input=True))
        assert decoded.has_residual
        assert decoded.frame_input

    def test_output_geometry_consistent(self):
        cfg = make_config()
        decoded = decode_layer(encode_layer(cfg))
        assert decoded.out_height == cfg.out_height
        assert decoded.out_width == cfg.out_width

    def test_extreme_values(self):
        cfg = make_config(
            in_channels=MAX_CHANNELS, out_channels=MAX_CHANNELS,
            threshold_int=MAX_THRESHOLD,
        )
        decoded = decode_layer(encode_layer(cfg))
        assert decoded.in_channels == MAX_CHANNELS
        assert decoded.threshold_int == MAX_THRESHOLD


class TestValidation:
    def test_oversized_field_rejected(self):
        cfg = make_config(in_channels=MAX_CHANNELS + 1)
        with pytest.raises(EncodingError):
            encode_layer(cfg)

    def test_oversized_timesteps(self):
        with pytest.raises(EncodingError):
            encode_layer(make_config(), timesteps=300)

    def test_register_value_width(self):
        with pytest.raises(EncodingError):
            RegisterWrite(0, 1 << 32)

    def test_missing_register_rejected(self):
        writes = encode_layer(make_config())
        partial = [w for w in writes if w.address != REG_THRESHOLD]
        with pytest.raises(EncodingError):
            decode_layer(partial)

    def test_unknown_kind_code(self):
        writes = encode_layer(make_config())
        bad = [
            RegisterWrite(w.address, 3) if w.address == 0x01 else w for w in writes
        ]
        with pytest.raises(EncodingError):
            decode_layer(bad)


class TestNetworkEncoding:
    def test_mapped_network_encodes(self):
        from repro.eval import build_geometry_network

        mapped = build_geometry_network("vgg11", width=0.25)
        configs = [l.config for l in mapped.layers]
        programmes = encode_network(configs, timesteps=8)
        assert len(programmes) == len(configs)
        # First layer carries the frame-input flag.
        first_writes = dict((w.address, w.value) for w in programmes[0][1])
        assert first_writes[REG_FLAGS] & 0x2
        later_writes = dict((w.address, w.value) for w in programmes[1][1])
        assert not (later_writes[REG_FLAGS] & 0x2)

    def test_full_width_resnet_fits_fields(self):
        from repro.eval import build_geometry_network

        mapped = build_geometry_network("resnet18", width=1.0)
        for layer in mapped.layers[:-1]:
            decode_layer(encode_layer(layer.config))
        # The pool-expanded FC fan-in (8192) exceeds the 12-bit channel
        # field — the driver streams FC weights instead, so encoding it
        # must fail loudly rather than wrap silently.
        with pytest.raises(EncodingError):
            encode_layer(mapped.layers[-1].config)
