"""Autograd engine tests: op semantics and gradient correctness."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.tensor import concatenate, stack, where


def numeric_grad(fn, x, eps=1e-3):
    """Central-difference gradient of scalar fn at numpy array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = fn(x)
        x[idx] = orig - eps
        lo = fn(x)
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(op, shape, seed=0, tol=2e-2):
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=shape).astype(np.float64)
    x = Tensor(x_data.astype(np.float32), requires_grad=True)
    out = op(x)
    loss = (out * out).sum()
    loss.backward()
    num = numeric_grad(lambda v: float((op(Tensor(v.astype(np.float32))).data ** 2).sum()), x_data.copy())
    assert np.allclose(x.grad, num, rtol=tol, atol=tol), f"grad mismatch for {op}"


class TestBasicOps:
    def test_add_values(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_scalar_radd(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((5.0 + a).data, [6.0, 7.0])

    def test_mul_grad_both_sides(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward()
        assert np.allclose(a.grad, [1.0])
        assert np.allclose(b.grad, [-1.0])

    def test_div_grad(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.5])

    def test_pow_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        b = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        out = a @ b
        out.sum().backward()
        assert out.shape == (2, 4)
        assert np.allclose(a.grad, np.full((2, 3), 4.0))
        assert np.allclose(b.grad, np.repeat(a.data.sum(axis=0)[:, None], 4, axis=1))

    def test_float64_input_downcast(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32


class TestBroadcasting:
    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((2, 3), np.float32), requires_grad=True)
        b = Tensor(np.ones((3,), np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_keepdim_broadcast(self):
        a = Tensor(np.ones((4, 1), np.float32), requires_grad=True)
        b = Tensor(np.ones((4, 5), np.float32), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (4, 1)
        assert np.allclose(a.grad, 5.0)

    def test_scalar_broadcast(self):
        s = Tensor(np.float32(2.0), requires_grad=True)
        x = Tensor(np.ones((3, 3), np.float32))
        (x * s).sum().backward()
        assert np.allclose(s.grad, 9.0)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_grad_scale(self):
        x = Tensor(np.ones((4,), np.float32), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 0.25)

    def test_mean_multi_axis(self):
        x = Tensor(np.ones((2, 3, 4), np.float32), requires_grad=True)
        out = x.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0 / 8)

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([1.0, 3.0, 3.0], np.float32), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.0, 0.5, 0.5])

    def test_var(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(8, 3)).astype(np.float32)
        v = Tensor(data).var(axis=0)
        assert np.allclose(v.data, data.var(axis=0), atol=1e-5)


class TestNonlinearities:
    def test_relu_values_and_grad(self):
        x = Tensor(np.array([-1.0, 0.5], np.float32), requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_exp_log_roundtrip(self):
        x = Tensor(np.array([0.5, 1.5], np.float32))
        assert np.allclose(x.exp().log().data, x.data, atol=1e-5)

    def test_exp_gradient_numeric(self):
        check_gradient(lambda t: t.exp(), (3, 4))

    def test_log_gradient_numeric(self):
        rng = np.random.default_rng(1)
        x_data = (rng.random((3, 3)) + 0.5).astype(np.float32)
        x = Tensor(x_data, requires_grad=True)
        x.log().sum().backward()
        assert np.allclose(x.grad, 1.0 / x_data, rtol=1e-3)

    def test_clip_masks_gradient(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0], np.float32), requires_grad=True)
        x.clip(0.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_floor_ste_identity_grad(self):
        x = Tensor(np.array([1.7, -0.3], np.float32), requires_grad=True)
        out = x.floor_ste()
        assert np.allclose(out.data, [1.0, -1.0])
        out.sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_round_ste(self):
        x = Tensor(np.array([1.4, 1.6], np.float32), requires_grad=True)
        out = x.round_ste()
        assert np.allclose(out.data, [1.0, 2.0])
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_abs_grad_sign(self):
        x = Tensor(np.array([-2.0, 3.0], np.float32), requires_grad=True)
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1.0, 1.0])

    def test_sqrt(self):
        x = Tensor(np.array([4.0], np.float32), requires_grad=True)
        x.sqrt().backward()
        assert np.allclose(x.grad, [0.25])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.ones((2, 6), np.float32), requires_grad=True)
        x.reshape(3, 4).sum().backward()
        assert x.grad.shape == (2, 6)

    def test_reshape_infer_dim(self):
        x = Tensor(np.ones((2, 6), np.float32))
        assert x.reshape(2, -1).shape == (2, 6)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        out = x.transpose()
        assert out.shape == (3, 2)
        (out * out).sum().backward()
        assert np.allclose(x.grad, 2 * x.data)

    def test_getitem_accumulates(self):
        x = Tensor(np.zeros(4, np.float32), requires_grad=True)
        (x[1] + x[1]).backward()
        assert np.allclose(x.grad, [0.0, 2.0, 0.0, 0.0])

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2), np.float32), requires_grad=True)
        out = x.pad2d(1)
        assert out.shape == (1, 1, 4, 4)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2), np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), np.float32), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_stack_grad(self):
        a = Tensor(np.ones(3, np.float32), requires_grad=True)
        b = Tensor(np.ones(3, np.float32), requires_grad=True)
        out = stack([a, b])
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)

    def test_where(self):
        a = Tensor(np.ones(3, np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, np.float32), requires_grad=True)
        cond = np.array([True, False, True])
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0, 1.0])
        assert np.allclose(b.grad, [0.0, 1.0, 0.0])


class TestGraphMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor(np.ones(3, np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x used twice along different paths: grads must sum.
        x = Tensor(np.float32(2.0), requires_grad=True)
        y = x * 3
        z = x * 4
        (y + z).backward()
        assert np.allclose(x.grad, 7.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.float32(1.0), requires_grad=True)
        out = x
        for _ in range(3000):
            out = out + 0.001
        out.backward()
        assert np.allclose(x.grad, 1.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = x * 2
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor(np.ones(2, np.float32), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_comparison_ops_not_differentiable(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a > 1.5
        assert not out.requires_grad
        assert out.data.tolist() == [False, True]
