"""Experiment-driver tests (shapes and consistency; heavy runs live in benchmarks)."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.eval import (
    accuracy_vs_timesteps_experiment,
    asic_projection_experiment,
    build_geometry_network,
    render_table,
    spike_rate_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
    table4_experiment,
)
from repro.eval.prior_art import PRIOR_ART, best_prior


class TestGeometryNetworks:
    def test_full_width_resnet_geometry(self):
        mapped = build_geometry_network("resnet18", width=1.0)
        assert len(mapped.layers) == 18
        stem = mapped.layers[0].config
        assert (stem.out_channels, stem.out_height) == (64, 32)
        fc = mapped.layers[-1].config
        assert fc.logical_in_features == 512
        assert fc.out_channels == 10

    def test_full_width_vgg_geometry(self):
        mapped = build_geometry_network("vgg11", width=1.0)
        assert len(mapped.layers) == 9
        out_channels = [l.config.out_channels for l in mapped.layers[:-1]]
        assert out_channels == [64, 128, 256, 256, 512, 512, 512, 512]


class TestTableDrivers:
    def test_table1_groups(self):
        result = table1_experiment()
        assert set(result) == {"resnet18", "vgg11"}
        resnet_counts = [r["count"] for r in result["resnet18"] if "Conv" in r["label"]]
        assert resnet_counts == [5, 4, 4, 4]

    def test_table2_rows(self):
        rows = table2_experiment()
        assert [r["layer"] for r in rows] == [
            "Conv (3x3,64)", "Conv (5x5,64)", "Conv (7x7,64)", "Conv (11x11,64)",
        ]

    def test_table3_keys(self):
        rows = table3_experiment()
        assert {r["parameter"] for r in rows} == {"LUT", "FF", "DSP", "BRAM", "LUTRAM", "BUFG"}

    def test_table4_gains(self):
        result = table4_experiment()
        assert result["dsp_efficiency_gain"] > result["pe_efficiency_gain"]
        assert "measured_spike_rate" not in result


def _fake_run_stats(conv_rates, fc_rate=0.1):
    """A synthetic RunStats whose synapse layers see the given input rates.

    Layout mirrors a VGG-style chain: frame conv, then (neuron, conv)*
    pairs, then a final neuron + fc — so input_spike_rates() returns
    [1.0 (frame), *conv_rates, fc_rate].
    """
    from repro.snn.stats import LayerStats, RunStats

    layers = [LayerStats(name="conv0", kind="conv")]
    for idx, rate in enumerate(conv_rates):
        layers.append(
            LayerStats(
                name=f"neuron{idx}", kind="neuron",
                spike_count=int(rate * 1000), neuron_steps=1000,
            )
        )
        layers.append(LayerStats(name=f"conv{idx + 1}", kind="conv"))
    layers.append(
        LayerStats(
            name="neuron_fc", kind="neuron",
            spike_count=int(fc_rate * 1000), neuron_steps=1000,
        )
    )
    layers.append(LayerStats(name="fc", kind="linear"))
    return RunStats(batch_size=4, timesteps=8, layers=layers)


class TestMeasuredRates:
    """Tables I/IV driven from observed spike rates instead of the
    hard-coded 0.12 assumption (the ROADMAP follow-up)."""

    def test_table1_accepts_explicit_rates(self):
        flat = table1_experiment()
        hot = table1_experiment(measured={"vgg11": [1.0] + [0.5] * 8})
        total = lambda rows: sum(r["latency_ms"] for r in rows)
        # Higher observed activity -> more active segments -> slower.
        assert total(hot["vgg11"]) > total(flat["vgg11"])
        assert hot["resnet18"] == flat["resnet18"]

    def test_table1_accepts_run_stats(self):
        stats = _fake_run_stats([0.3] * 7)  # vgg11: 8 convs + 1 fc
        assert len(stats.input_spike_rates()) == 9
        flat = table1_experiment()
        measured = table1_experiment(measured={"vgg11": stats})
        total = lambda rows: sum(r["latency_ms"] for r in rows)
        assert total(measured["vgg11"]) != total(flat["vgg11"])

    def test_table1_rejects_mismatched_rates(self):
        with pytest.raises(ValueError):
            table1_experiment(measured={"vgg11": [0.1, 0.2]})

    def test_input_spike_rates_skip(self):
        stats = _fake_run_stats([0.3] * 7)
        skipped = stats.input_spike_rates(skip=lambda name: name == "conv1")
        assert len(skipped) == 8

    def test_table4_reports_measured_throughput(self):
        stats = _fake_run_stats([0.25] * 7)
        for layer in stats.layers:
            if layer.kind != "neuron":
                layer.synaptic_ops = 250
                layer.dense_synaptic_ops = 1000
        result = table4_experiment(run_stats=stats)
        assert result["measured_op_saving"] == pytest.approx(0.75)
        # Event-driven cores deliver dense-equivalent work at
        # peak / performed-fraction.
        base = table4_experiment()
        ours = next(r for r in base["rows"] if r["paper"] == "This Work")
        assert result["dense_equivalent_gops"] == pytest.approx(
            ours["gops"] * 4.0, rel=1e-6
        )

    def test_asic(self):
        report = asic_projection_experiment()
        assert report.gops == pytest.approx(192.0)


class TestPriorArt:
    def test_best_prior(self):
        assert best_prior("gops_per_pe") == pytest.approx(0.343)
        assert best_prior("gops_per_dsp") == pytest.approx(0.46)

    def test_missing_metric(self):
        with pytest.raises(AttributeError):
            best_prior("nonexistent")

    def test_rows_complete(self):
        assert len(PRIOR_ART) == 5


class TestRenderTable:
    def test_renders_columns(self):
        text = render_table([{"a": 1, "b": 2.5}], ["a", "b"])
        assert "a" in text and "2.5" in text

    def test_empty(self):
        assert "empty" in render_table([], ["a"])

    def test_missing_cells(self):
        text = render_table([{"a": 1}], ["a", "b"])
        assert "a" in text


class TestAccuracyExperimentSmall:
    """A miniature accuracy experiment: exercises the full driver quickly."""

    @pytest.fixture(scope="class")
    def curve(self):
        ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=21)
        return accuracy_vs_timesteps_experiment(
            "vgg11",
            dataset=ds,
            width=0.125,
            max_timesteps=8,
            ann_epochs=2,
            finetune_epochs=1,
        )

    def test_curve_fields(self, curve):
        assert len(curve.per_step_accuracy) == 8
        assert 0.0 <= curve.ann_accuracy <= 1.0
        assert 0.0 <= curve.quant_accuracy <= 1.0

    def test_spike_rates_from_curve(self, curve):
        ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=21)
        stats = spike_rate_experiment(curve, ds, timesteps=4, max_samples=40)
        assert len(stats.per_layer) == 8
        assert all(0.0 <= r <= 1.0 for r in stats.per_layer)

    def test_within_of_ann_helper(self, curve):
        t = curve.within_of_ann(margin=1.0)  # trivially satisfied
        assert t == 1

    def test_spike_rates_on_event_stream_input(self, curve):
        """input_format="events" runs the same network on a rate-encoded
        COO spike stream (the event-driven input mode)."""
        ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=21)
        stats = spike_rate_experiment(
            curve, ds, timesteps=4, max_samples=24, input_format="events"
        )
        assert len(stats.per_layer) == 8
        assert all(0.0 <= r <= 1.0 for r in stats.per_layer)
        assert stats.overall > 0.0


class TestSpikeRateInputFormats:
    def test_unknown_input_format_rejected_before_any_work(self):
        with pytest.raises(ValueError, match="frames"):
            spike_rate_experiment(None, None, input_format="holograms")
