"""Experiment-driver tests (shapes and consistency; heavy runs live in benchmarks)."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.eval import (
    accuracy_vs_timesteps_experiment,
    asic_projection_experiment,
    build_geometry_network,
    render_table,
    spike_rate_experiment,
    table1_experiment,
    table2_experiment,
    table3_experiment,
    table4_experiment,
)
from repro.eval.prior_art import PRIOR_ART, best_prior


class TestGeometryNetworks:
    def test_full_width_resnet_geometry(self):
        mapped = build_geometry_network("resnet18", width=1.0)
        assert len(mapped.layers) == 18
        stem = mapped.layers[0].config
        assert (stem.out_channels, stem.out_height) == (64, 32)
        fc = mapped.layers[-1].config
        assert fc.logical_in_features == 512
        assert fc.out_channels == 10

    def test_full_width_vgg_geometry(self):
        mapped = build_geometry_network("vgg11", width=1.0)
        assert len(mapped.layers) == 9
        out_channels = [l.config.out_channels for l in mapped.layers[:-1]]
        assert out_channels == [64, 128, 256, 256, 512, 512, 512, 512]


class TestTableDrivers:
    def test_table1_groups(self):
        result = table1_experiment()
        assert set(result) == {"resnet18", "vgg11"}
        resnet_counts = [r["count"] for r in result["resnet18"] if "Conv" in r["label"]]
        assert resnet_counts == [5, 4, 4, 4]

    def test_table2_rows(self):
        rows = table2_experiment()
        assert [r["layer"] for r in rows] == [
            "Conv (3x3,64)", "Conv (5x5,64)", "Conv (7x7,64)", "Conv (11x11,64)",
        ]

    def test_table3_keys(self):
        rows = table3_experiment()
        assert {r["parameter"] for r in rows} == {"LUT", "FF", "DSP", "BRAM", "LUTRAM", "BUFG"}

    def test_table4_gains(self):
        result = table4_experiment()
        assert result["dsp_efficiency_gain"] > result["pe_efficiency_gain"]

    def test_asic(self):
        report = asic_projection_experiment()
        assert report.gops == pytest.approx(192.0)


class TestPriorArt:
    def test_best_prior(self):
        assert best_prior("gops_per_pe") == pytest.approx(0.343)
        assert best_prior("gops_per_dsp") == pytest.approx(0.46)

    def test_missing_metric(self):
        with pytest.raises(AttributeError):
            best_prior("nonexistent")

    def test_rows_complete(self):
        assert len(PRIOR_ART) == 5


class TestRenderTable:
    def test_renders_columns(self):
        text = render_table([{"a": 1, "b": 2.5}], ["a", "b"])
        assert "a" in text and "2.5" in text

    def test_empty(self):
        assert "empty" in render_table([], ["a"])

    def test_missing_cells(self):
        text = render_table([{"a": 1}], ["a", "b"])
        assert "a" in text


class TestAccuracyExperimentSmall:
    """A miniature accuracy experiment: exercises the full driver quickly."""

    @pytest.fixture(scope="class")
    def curve(self):
        ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=21)
        return accuracy_vs_timesteps_experiment(
            "vgg11",
            dataset=ds,
            width=0.125,
            max_timesteps=8,
            ann_epochs=2,
            finetune_epochs=1,
        )

    def test_curve_fields(self, curve):
        assert len(curve.per_step_accuracy) == 8
        assert 0.0 <= curve.ann_accuracy <= 1.0
        assert 0.0 <= curve.quant_accuracy <= 1.0

    def test_spike_rates_from_curve(self, curve):
        ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=21)
        stats = spike_rate_experiment(curve, ds, timesteps=4, max_samples=40)
        assert len(stats.per_layer) == 8
        assert all(0.0 <= r <= 1.0 for r in stats.per_layer)

    def test_within_of_ann_helper(self, curve):
        t = curve.within_of_ann(margin=1.0)  # trivially satisfied
        assert t == 1
