"""Shared-memory slab transport: framing, recycling, lifecycle.

The serving pool's correctness rests on three slab-ring guarantees —
frames reconstruct exactly (dtype/shape framing), stale generations are
rejected rather than silently served, and every segment is unlinked on
drain *and* on crash.  These tests pin each one, including the
cross-process cases (attacher never unlinks; fork children cannot
destroy the parent's ring; a crashing owner still cleans ``/dev/shm``).
"""

import multiprocessing
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.serve.shm import (
    HEADER_SIZE,
    Slab,
    SlabError,
    SlabOverflowError,
    SlabRing,
    StaleSlabError,
    attach_slab,
    create_slab,
    list_segments,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)


@pytest.fixture
def ring():
    ring = SlabRing()
    yield ring
    ring.unlink_all()


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "array",
    [
        np.arange(24, dtype=np.float32).reshape(2, 3, 4),
        np.arange(7, dtype=np.int64),
        np.array(3.5, dtype=np.float64),
        np.random.default_rng(0).normal(size=(4, 2, 8, 8)).astype(np.float32),
    ],
)
def test_roundtrip_preserves_dtype_shape_and_bits(ring, array):
    slab = ring.acquire(array.nbytes)
    generation = ring.next_generation()
    slab.write(array, generation)
    out = slab.read(expected_generation=generation)
    assert out.dtype == array.dtype
    assert out.shape == array.shape
    assert np.array_equal(out, array)


def test_stale_generation_rejected(ring):
    slab = ring.acquire(64)
    generation = ring.next_generation()
    slab.write(np.zeros(4, dtype=np.float32), generation)
    with pytest.raises(StaleSlabError):
        slab.read(expected_generation=generation + 1)
    # The right generation still reads fine afterwards.
    assert slab.read(expected_generation=generation).shape == (4,)


def test_overflow_raises_not_truncates(ring):
    slab = ring.acquire(16)
    with pytest.raises(SlabOverflowError):
        slab.write(np.zeros(1024, dtype=np.float64), ring.next_generation())


def test_bad_magic_rejected(ring):
    slab = ring.acquire(64)
    slab.shm.buf[:4] = b"JUNK"
    with pytest.raises(SlabError):
        slab.read()


def test_copy_false_views_shared_pages(ring):
    array = np.arange(8, dtype=np.float32)
    slab = ring.acquire(array.nbytes)
    generation = ring.next_generation()
    slab.write(array, generation)
    view = slab.read(expected_generation=generation, copy=False)
    slab.write(np.full(8, 9.0, dtype=np.float32), ring.next_generation())
    assert view[0] == 9.0  # a view, not a copy
    del view


# ----------------------------------------------------------------------
# Ring recycling and accounting
# ----------------------------------------------------------------------
def test_release_recycles_the_same_segment(ring):
    first = ring.acquire(256)
    name = first.name
    ring.release(first)
    second = ring.acquire(128)
    assert second.name == name
    assert ring.slab_count() == 1


def test_undersized_free_slab_is_retired_for_a_larger_one(ring):
    small = ring.acquire(64)
    small_name = small.name
    ring.release(small)
    big = ring.acquire(1 << 16)
    assert big.name != small_name
    assert ring.slab_count() == 1  # the small one was unlinked, not kept
    assert small_name.split("/")[-1] not in list_segments(ring.prefix)


def test_bytes_in_flight_tracks_checkouts(ring):
    assert ring.bytes_in_flight() == 0
    slab = ring.acquire(1000)
    assert ring.bytes_in_flight() == slab.capacity >= 1000 + HEADER_SIZE
    ring.release(slab)
    assert ring.bytes_in_flight() == 0
    assert ring.total_bytes() == slab.capacity


def test_generations_are_monotonic(ring):
    seen = [ring.next_generation() for _ in range(5)]
    assert seen == sorted(seen) and len(set(seen)) == 5


# ----------------------------------------------------------------------
# Attachment (the replica side)
# ----------------------------------------------------------------------
def test_attach_reads_creators_frame_and_close_does_not_unlink(ring):
    array = np.arange(12, dtype=np.float32).reshape(3, 4)
    slab = ring.acquire(array.nbytes)
    generation = ring.next_generation()
    slab.write(array, generation)

    attached = attach_slab(slab.name)
    assert np.array_equal(attached.read(expected_generation=generation), array)
    attached.write(array * 2, generation + 1)
    attached.close()
    attached.unlink()  # non-owner: must be a no-op

    assert slab.name in list_segments(ring.prefix)
    assert np.array_equal(slab.read(expected_generation=generation + 1), array * 2)


# ----------------------------------------------------------------------
# Unlink guarantees
# ----------------------------------------------------------------------
def test_unlink_all_destroys_every_segment_and_is_idempotent():
    ring = SlabRing()
    ring.acquire(64)
    ring.release(ring.acquire(128))
    assert list_segments(ring.prefix)
    ring.unlink_all()
    assert list_segments(ring.prefix) == []
    ring.unlink_all()  # second call is a no-op
    with pytest.raises(SlabError):
        ring.acquire(64)


def test_release_after_unlink_all_only_closes():
    ring = SlabRing()
    slab = ring.acquire(64)
    ring.unlink_all()
    ring.release(slab)  # checked-out at drain time: close, no crash
    assert list_segments(ring.prefix) == []


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_fork_child_cannot_unlink_parents_segments():
    ring = SlabRing()
    try:
        slab = ring.acquire(64)
        slab.write(np.zeros(4, dtype=np.float32), ring.next_generation())

        def child():
            # Inherited ring object + inherited atexit hook: both must
            # refuse to destroy segments they do not own.
            ring.unlink_all()

        ctx = multiprocessing.get_context("fork")
        process = ctx.Process(target=child)
        process.start()
        process.join(10)
        assert process.exitcode == 0
        assert slab.name in list_segments(ring.prefix)
    finally:
        ring.unlink_all()
    assert list_segments(ring.prefix) == []


def test_crashing_owner_still_unlinks(tmp_path):
    """A ring owner that dies on an unhandled exception leaves no
    ``/dev/shm`` segments behind (the atexit hook is the crash net)."""
    prefix = f"repro-pool-crash-{os.getpid()}"
    script = (
        "import numpy as np\n"
        "from repro.serve.shm import SlabRing\n"
        f"ring = SlabRing(prefix={prefix!r})\n"
        "slab = ring.acquire(256)\n"
        "slab.write(np.zeros(8, dtype=np.float32), ring.next_generation())\n"
        "raise RuntimeError('simulated crash')\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env,
        capture_output=True,
        timeout=60,
    )
    assert result.returncode != 0  # it really crashed
    assert list_segments(prefix) == []
