"""Full-accelerator tests: integer SIA vs float SNN, controller parity."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.controller import LayerController
from repro.pipeline import build_quantized_twin
from repro.snn import SpikingNetwork, convert_to_snn


@pytest.fixture(scope="module")
def setup():
    """Converted VGG + mapped SIA + a batch of frames (module-scoped)."""
    ds = SyntheticCIFAR(num_train=64, num_test=32, noise=0.6, seed=7)
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    # Populate BN stats so eval-mode folding is meaningful.
    from repro.pipeline.trainer import Trainer, TrainConfig

    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    mapped = map_network(model, calibration_input=ds.train_x)
    sia = SpikingInferenceAccelerator(mapped)
    # Float SNN twin with identical parameters.
    twin = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    twin.load_state_dict(
        {
            k: v
            for k, v in _snapshot(model).items()
        }
    )
    return ds, model, mapped, sia


def _snapshot(converted_model):
    # Converted models lose QuantReLU params, so capture what remains.
    return converted_model.state_dict()


class TestFunctionalRun:
    def test_logits_shape(self, setup):
        ds, _, _, sia = setup
        logits, report = sia.run(ds.test_x[:8], timesteps=4)
        assert logits.shape == (8, 10)
        assert report.batch_size == 8
        assert report.timesteps == 4

    def test_deterministic(self, setup):
        ds, _, _, sia = setup
        a, _ = sia.run(ds.test_x[:4], timesteps=4)
        b, _ = sia.run(ds.test_x[:4], timesteps=4)
        assert np.array_equal(a, b)

    def test_batch_invariance(self, setup):
        ds, _, _, sia = setup
        full, _ = sia.run(ds.test_x[:6], timesteps=3)
        parts = [sia.run(ds.test_x[i : i + 2], timesteps=3)[0] for i in (0, 2, 4)]
        assert np.allclose(full, np.concatenate(parts))

    def test_agrees_with_float_snn(self, setup):
        ds, model, _, sia = setup
        snn = SpikingNetwork(model, timesteps=8)
        float_logits = snn.forward(ds.test_x[:24], 8)
        int_logits, _ = sia.run(ds.test_x[:24], timesteps=8)
        agreement = (float_logits.argmax(1) == int_logits.argmax(1)).mean()
        # INT8 weights + 16-bit fixed-point BN: predictions should agree
        # on the overwhelming majority of samples.
        assert agreement >= 0.85

    def test_input_validation(self, setup):
        _, _, _, sia = setup
        with pytest.raises(ValueError):
            sia.run(np.zeros((3, 32, 32), np.float32))
        with pytest.raises(ValueError):
            sia.run(np.zeros((1, 3, 32, 32), np.float32), timesteps=0)

    def test_accuracy_helper(self, setup):
        ds, _, _, sia = setup
        preds = sia.predict(ds.test_x[:10], timesteps=4)
        acc = sia.accuracy(ds.test_x[:10], preds, timesteps=4, batch_size=4)
        assert acc == 1.0


class TestRunReport:
    def test_spike_rates_recorded(self, setup):
        ds, _, _, sia = setup
        _, report = sia.run(ds.test_x[:8], timesteps=4)
        rates = report.spike_rates()
        assert len(rates) == 8  # spiking conv layers
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_cycles_positive_and_scale_with_batch(self, setup):
        ds, _, _, sia = setup
        _, small = sia.run(ds.test_x[:2], timesteps=4)
        _, large = sia.run(ds.test_x[:8], timesteps=4)
        assert large.total_core_cycles > small.total_core_cycles
        assert small.cycles_per_inference > 0

    def test_synaptic_ops_counted(self, setup):
        ds, _, _, sia = setup
        _, report = sia.run(ds.test_x[:4], timesteps=4)
        assert report.total_synaptic_ops > 0

    def test_frame_layer_has_no_pl_cycles(self, setup):
        ds, _, _, sia = setup
        _, report = sia.run(ds.test_x[:4], timesteps=4)
        assert report.layers[0].core_cycles == 0  # PS-side frame conv
        assert report.layers[1].core_cycles > 0


class TestEventDrivenAblation:
    def test_dense_mode_costs_more_cycles(self, setup):
        ds, _, mapped, _ = setup
        sparse = SpikingInferenceAccelerator(mapped, event_driven=True)
        dense = SpikingInferenceAccelerator(mapped, event_driven=False)
        _, rs = sparse.run(ds.test_x[:4], timesteps=4)
        _, rd = dense.run(ds.test_x[:4], timesteps=4)
        assert rd.total_core_cycles > rs.total_core_cycles
        # Functional results identical: gating only skips zero work.
        a, _ = sparse.run(ds.test_x[:4], timesteps=4)
        b, _ = dense.run(ds.test_x[:4], timesteps=4)
        assert np.array_equal(a, b)


class TestControllerParity:
    def test_single_sample_matches_batched(self, setup):
        ds, _, mapped, sia = setup
        ctrl = LayerController(mapped)
        for i in range(3):
            single = ctrl.run_network(ds.test_x[i], timesteps=4)
            batched, _ = sia.run(ds.test_x[i : i + 1], timesteps=4)
            assert np.allclose(single, batched[0])

    def test_traces_cover_all_layers_and_steps(self, setup):
        ds, _, mapped, _ = setup
        ctrl = LayerController(mapped)
        ctrl.run_network(ds.test_x[0], timesteps=3)
        traces = ctrl.state.traces
        assert len(traces) == 3 * len(mapped.layers)
        assert all(t.core_cycles >= 0 for t in traces)

    def test_weight_tile_accounting(self, setup):
        _, _, mapped, _ = setup
        ctrl = LayerController(mapped)
        assert ctrl.weight_tiles(mapped.layers[0]) >= 1

    def test_rejects_batch_input(self, setup):
        ds, _, mapped, _ = setup
        ctrl = LayerController(mapped)
        with pytest.raises(ValueError):
            ctrl.run_network(ds.test_x[:2], timesteps=2)


class TestResnetAccelerator:
    def test_residual_network_runs_and_agrees(self):
        ds = SyntheticCIFAR(num_train=32, num_test=16, noise=0.6, seed=9)
        model = build_quantized_twin(
            "resnet18", width=0.125, num_classes=10, levels=2, seed=1
        )
        from repro.pipeline.trainer import Trainer, TrainConfig

        Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
        convert_to_snn(model)
        mapped = map_network(model, calibration_input=ds.train_x)
        sia = SpikingInferenceAccelerator(mapped)
        snn = SpikingNetwork(model, timesteps=6)
        float_logits = snn.forward(ds.test_x, 6)
        int_logits, report = sia.run(ds.test_x, timesteps=6)
        agreement = (float_logits.argmax(1) == int_logits.argmax(1)).mean()
        assert agreement >= 0.8
        assert len(report.spike_rates()) == 17
