"""Functional-op tests: im2col, conv2d, pooling, losses."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F
from repro.tensor.functional import col2im, im2col


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Reference conv via explicit loops."""
    n, c_in, h, wd = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - k) // stride + 1
    ow = (wd + 2 * padding - k) // stride + 1
    out = np.zeros((n, c_out, oh, ow), dtype=np.float64)
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    window = x[ni, :, i * stride : i * stride + k, j * stride : j * stride + k]
                    out[ni, co, i, j] = (window * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out.astype(np.float32)


class TestIm2col:
    def test_shapes(self):
        x = np.arange(2 * 3 * 5 * 5, dtype=np.float32).reshape(2, 3, 5, 5)
        cols, oh, ow = im2col(x, kernel=3, stride=1, padding=0)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (2 * 9, 3 * 9)

    def test_stride_and_padding(self):
        x = np.ones((1, 1, 4, 4), np.float32)
        cols, oh, ow = im2col(x, kernel=2, stride=2, padding=1)
        assert (oh, ow) == (3, 3)

    def test_pad_workspace_not_shared_across_paddings(self):
        # Regression: two unfolds whose *padded* sizes collide but whose
        # paddings differ must not share a workspace — the second call's
        # border must be zeros, not the first call's activations.
        a = np.full((1, 1, 8, 8), 7.0, dtype=np.float32)  # pad=1 -> 10x10
        im2col(a, kernel=3, stride=1, padding=1)
        b = np.ones((1, 1, 6, 6), dtype=np.float32)  # pad=2 -> 10x10
        cols, _, _ = im2col(b, kernel=5, stride=1, padding=2)
        assert 7.0 not in cols
        # Top-left window of the padded input: 2 border rows/cols of 0.
        first = cols[0].reshape(5, 5)
        assert np.array_equal(first[:2], np.zeros((2, 5), np.float32))
        assert np.array_equal(first[:, :2], np.zeros((5, 2), np.float32))

    def test_repeated_unfolds_reuse_workspace_correctly(self):
        rng = np.random.default_rng(1)
        for _ in range(3):
            x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
            cols, _, _ = im2col(x, 3, 1, 1)
            # Interior must be fresh per call even though the padded
            # buffer is reused.
            assert cols[0, 4] == pytest.approx(x[0, 0, 0, 0])

    def test_col2im_is_adjoint(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float64)
        cols, oh, ow = im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 2, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        ref = naive_conv2d(x, w, b, stride, padding)
        assert np.allclose(out.data, ref, atol=1e-4)

    def test_weight_gradient_numeric(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)).astype(np.float32))
        w_data = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        w = Tensor(w_data.astype(np.float32), requires_grad=True)
        loss = (F.conv2d(x, w, padding=1) ** 2).sum()
        loss.backward()
        eps, idx = 1e-2, (1, 0, 2, 1)
        for sign in (1,):
            w_hi = w_data.copy(); w_hi[idx] += eps
            w_lo = w_data.copy(); w_lo[idx] -= eps
            hi = float((F.conv2d(x, Tensor(w_hi.astype(np.float32)), padding=1).data ** 2).sum())
            lo = float((F.conv2d(x, Tensor(w_lo.astype(np.float32)), padding=1).data ** 2).sum())
            num = (hi - lo) / (2 * eps)
        assert w.grad[idx] == pytest.approx(num, rel=5e-2)

    def test_input_gradient_numeric(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(1, 2, 4, 4)).astype(np.float64)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32))
        x = Tensor(x_data.astype(np.float32), requires_grad=True)
        (F.conv2d(x, w, padding=1) ** 2).sum().backward()
        eps, idx = 1e-2, (0, 1, 2, 2)
        x_hi = x_data.copy(); x_hi[idx] += eps
        x_lo = x_data.copy(); x_lo[idx] -= eps
        hi = float((F.conv2d(Tensor(x_hi.astype(np.float32)), w, padding=1).data ** 2).sum())
        lo = float((F.conv2d(Tensor(x_lo.astype(np.float32)), w, padding=1).data ** 2).sum())
        assert x.grad[idx] == pytest.approx((hi - lo) / (2 * eps), rel=5e-2)

    def test_bias_gradient(self):
        x = Tensor(np.zeros((2, 1, 4, 4), np.float32))
        w = Tensor(np.zeros((3, 1, 3, 3), np.float32))
        b = Tensor(np.zeros(3, np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        assert np.allclose(b.grad, 2 * 16)  # batch x spatial positions

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 4, 4), np.float32)),
                     Tensor(np.zeros((2, 4, 3, 3), np.float32)))

    def test_rectangular_kernel_rejected(self):
        x = Tensor(np.zeros((1, 1, 4, 4), np.float32))
        w = Tensor(np.zeros((1, 1, 3, 2), np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data.ravel(), [5, 7, 13, 15])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.allclose(x.grad[0, 0], expected)

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.ones((2, 3, 4, 4), np.float32), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        assert out.shape == (2, 3, 2, 2)
        assert np.allclose(out.data, 1.0)
        out.sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_global_avg_pool(self):
        x = Tensor(np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2))
        out = F.global_avg_pool2d(x)
        assert out.shape == (1, 2)
        assert np.allclose(out.data, [[1.5, 5.5]])


class TestLosses:
    def test_log_softmax_normalised(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 10)).astype(np.float32))
        logp = F.log_softmax(x)
        assert np.allclose(np.exp(logp.data).sum(axis=1), 1.0, atol=1e-5)

    def test_log_softmax_stability(self):
        x = Tensor(np.array([[1000.0, 1000.0]], np.float32))
        logp = F.log_softmax(x)
        assert np.isfinite(logp.data).all()

    def test_softmax_sums_to_one(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]], np.float32))
        assert F.softmax(x).data.sum() == pytest.approx(1.0, abs=1e-5)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4), np.float32))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-5)

    def test_cross_entropy_gradient_direction(self):
        logits = Tensor(np.zeros((1, 3), np.float32), requires_grad=True)
        F.cross_entropy(logits, np.array([1])).backward()
        # Gradient should push the target logit up, others down.
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0
        assert logits.grad.sum() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_decreases_with_training_signal(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(8, 5)).astype(np.float32)
        y = rng.integers(0, 5, size=8)
        logits = Tensor(logits_data, requires_grad=True)
        loss = F.cross_entropy(logits, y)
        loss.backward()
        stepped = logits_data - 1.0 * logits.grad
        new_loss = F.cross_entropy(Tensor(stepped), y)
        assert new_loss.item() < loss.item()

    def test_accuracy(self):
        logits = Tensor(np.array([[0.9, 0.1], [0.2, 0.8]], np.float32))
        assert F.accuracy(logits, np.array([0, 1])) == 1.0
        assert F.accuracy(logits, np.array([1, 1])) == 0.5


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones(100, np.float32))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert np.allclose(out.data, 1.0)

    def test_training_scales_survivors(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(10000, np.float32))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6
