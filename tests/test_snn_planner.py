"""Planner v2: predict-mode calibration, warm starts, mid-run re-plans,
per-layer shard plans.

The contracts under test:

* a plan-cache miss with a trustworthy cost model compiles the plan
  from predictions (no kernel races) and marks its provenance;
* a miss whose neighboring density bucket holds a plan warm-starts from
  it instead of racing cold;
* drift during a planned run swaps the remaining schedule at a layer
  boundary with **bit-identical** logits versus the un-swapped run;
* per-layer shard decisions execute through the shard supervisor, so an
  injected shard fault degrades and completes instead of failing the
  run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.snn import AutoEngine, SpikingNetwork
from repro.snn.engines import EngineWorker, ExecutionPlan, make_engine
from repro.snn.engines import auto as auto_module
from repro.snn.engines.auto import LayerDecision
from repro.snn.engines.costmodel import CostModel
from repro.snn.engines.sharding import run_layer_shards, split_bounds

from test_snn_engine import converted_pooled_toy, converted_toy


def ready_cost_model(
    gemm=(1e-6, 0.1), event=(2e-6, 0.2), coo=(5e-7, 0.05)
) -> CostModel:
    """A fitted model with known affine laws per backend."""
    model = CostModel()
    ops = np.linspace(1e4, 1e6, 8)
    for backend, (slope, intercept) in (
        ("gemm", gemm), ("event", event), ("event-batched", coo),
    ):
        for o in ops:
            model.observe(backend, float(o), slope * float(o) + intercept)
    assert model.plan_ready()
    return model


class TestPredictModeCalibration:
    def test_plan_miss_with_ready_model_skips_races(self):
        engine = AutoEngine(cost_model=ready_cost_model())
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(10).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stats = net.last_run_stats
        assert stats.plan_source == "cost-model"
        plan = engine.plan_for((4, 2, 4, 4), 4)
        assert plan is not None
        assert plan.source == "cost-model"
        for decision in plan.decisions.values():
            assert decision.source == "cost-model"
            assert decision.predicted_ms > 0.0
        # No races ran, so the model gained no new samples.
        assert not engine._run_observations

    def test_predicted_plan_logits_match_raced_plan(self):
        x = np.random.default_rng(11).normal(size=(4, 2, 4, 4)).astype(np.float32)
        raced = SpikingNetwork(converted_toy(), timesteps=4, engine="auto")
        predicted = SpikingNetwork(
            converted_toy(),
            timesteps=4,
            engine=AutoEngine(cost_model=ready_cost_model()),
        )
        lr = raced.forward(x)
        lp = predicted.forward(x)
        assert np.allclose(lr, lp, atol=1e-4)

    def test_profile_records_carry_provenance(self):
        engine = AutoEngine(cost_model=ready_cost_model())
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(12).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        synapse_rows = [
            r for r in net.last_run_stats.profile_records()
            if r["kind"] in ("conv", "linear")
        ]
        assert synapse_rows
        for row in synapse_rows:
            assert row["source"] == "cost-model"
            assert row["predicted_ms"] > 0.0

    def test_profile_table_shows_plan_source(self):
        engine = AutoEngine(cost_model=ready_cost_model())
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(13).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        table = net.last_run_stats.profile_table()
        assert "plan source cost-model" in table
        assert "source" in table.splitlines()[0]


class TestWarmStart:
    def test_neighbor_bucket_seeds_calibration(self):
        # A huge drift threshold makes every seed admissible, so the
        # second calibration copies the neighbor's decisions wholesale.
        engine = AutoEngine(drift_threshold=50.0)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(20)
        dense_x = rng.normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(dense_x)  # cold calibration, densest bucket
        assert engine.warm_starts == 0
        first = engine.plan_for((4, 2, 4, 4), 4)
        # Same shape, ~40% input density: a different plan-key bucket.
        mask = rng.random(dense_x.shape) < 0.4
        sparse_x = (dense_x * mask).astype(np.float32)
        net.forward(sparse_x)
        assert engine.calibration_runs == 2
        assert engine.warm_starts == 1
        second = engine.plan_for((4, 2, 4, 4), 4)
        assert second is not first
        # Seeded decisions copy the neighbor's backend choice.
        for name, decision in second.decisions.items():
            assert decision.backend == first.decisions[name].backend

    def test_cold_start_without_neighbor_does_not_count(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(21).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert engine.warm_starts == 0


class TestMidRunReplan:
    def _calibrated_engine(self, drift_threshold=0.3, midrun=True):
        engine = AutoEngine(
            drift_threshold=drift_threshold,
            midrun_replan=midrun,
            cost_model=ready_cost_model(),
        )
        return engine

    def test_drift_replans_mid_run_and_keeps_plan(self):
        engine = self._calibrated_engine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(30)
        calm = rng.normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(calm)  # compiles the plan (predict mode)
        shifted = np.abs(rng.normal(size=(4, 2, 4, 4))).astype(np.float32) * 10.0
        net.forward(shifted)
        stats = net.last_run_stats
        assert stats.replan_triggered
        assert stats.plan_source == "re-planned"
        assert stats.replanned_at != ""
        assert stats.plan_drift > 0.3
        assert engine.replans_triggered == 1
        # Unlike the evict-next-run fallback, the plan survives — updated
        # in place, no cold recalibration queued.
        plan = engine.plan_for((4, 2, 4, 4), 4)
        assert plan is not None
        assert plan.source == "re-planned"
        assert engine.calibration_runs == 1
        net.forward(shifted)
        assert engine.calibration_runs == 1  # still no recalibration

    def test_replanned_logits_bit_identical_to_unswapped_run(self):
        rng = np.random.default_rng(31)
        calm = rng.normal(size=(4, 2, 4, 4)).astype(np.float32)
        shifted = np.abs(rng.normal(size=(4, 2, 4, 4))).astype(np.float32) * 10.0

        replanning = self._calibrated_engine(midrun=True)
        net_a = SpikingNetwork(converted_toy(), timesteps=4, engine=replanning)
        net_a.forward(calm)
        original = replanning.plan_for((4, 2, 4, 4), 4)
        frozen = ExecutionPlan.from_json(original.to_json())

        # The control engine executes the *same* original plan with the
        # mid-run guard disabled (its post-run fallback may evict, which
        # does not affect this run's logits).
        control = AutoEngine(drift_threshold=0.3, midrun_replan=False)
        net_b = SpikingNetwork(converted_toy(), timesteps=4, engine=control)
        control._plans.put(frozen.key, frozen)

        out_replanned = net_a.forward(shifted)
        assert net_a.last_run_stats.replan_triggered
        out_control = net_b.forward(shifted)
        assert not net_b.last_run_stats.replanned_at
        assert np.array_equal(out_replanned, out_control)

    def test_disabled_midrun_falls_back_to_evict(self):
        engine = self._calibrated_engine(midrun=False)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(32)
        net.forward(rng.normal(size=(4, 2, 4, 4)).astype(np.float32))
        shifted = np.abs(rng.normal(size=(4, 2, 4, 4))).astype(np.float32) * 10.0
        net.forward(shifted)
        stats = net.last_run_stats
        assert stats.replan_triggered
        assert stats.replanned_at == ""
        # Evicted: the next run recalibrates (predict mode, still a
        # calibration pass).
        assert engine.plan_for((4, 2, 4, 4), 4) is None

    def test_event_layers_never_swapped(self):
        # The per-plane gather is only summation-order equal to the
        # GEMM; a re-plan must leave such layers on their backend.
        decision = LayerDecision(
            name="fc", backend="event", density=0.1,
            gemm_seconds=1.0, dense_ops=10_000,
        )
        engine = self._calibrated_engine()
        repredicted = engine._repredict_decision(decision, scale=5.0)
        assert repredicted.backend == "event"
        assert repredicted.density == pytest.approx(0.5)

    def test_geometry_less_decisions_keep_backend(self):
        # Plans persisted before Planner v2 carry no dense_ops; they
        # cannot be priced, so a re-plan leaves them untouched.
        decision = LayerDecision(
            name="fc", backend="gemm", density=0.1, gemm_seconds=1.0,
        )
        engine = self._calibrated_engine()
        repredicted = engine._repredict_decision(decision, scale=3.0)
        assert repredicted.backend == "gemm"
        assert repredicted.source == "raced"


class TestSplitBounds:
    def test_partition_covers_range(self):
        bounds = split_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_near_equal_blocks(self):
        sizes = [hi - lo for lo, hi in split_bounds(11, 4)]
        assert sorted(sizes) == [2, 3, 3, 3]

    def test_more_shards_than_rows(self):
        bounds = split_bounds(2, 5)
        assert len(bounds) == 2
        assert bounds == [(0, 1), (1, 2)]

    def test_degenerate_inputs(self):
        assert split_bounds(0, 4) == []
        assert split_bounds(4, 0) == []


class TestLayerShardPlans:
    def _planned_net(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_pooled_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(40).normal(size=(6, 2, 8, 8)).astype(np.float32)
        net.forward(x)  # calibrate
        return engine, net, x

    def _shard_last_gemm_layer(self, engine, workers=2):
        plan = engine.plan_for((6, 2, 8, 8), 4)
        name = list(plan.decisions)[-1]
        plan.decisions[name] = replace(
            plan.decisions[name],
            backend="gemm", shard_mode="thread", workers=workers,
        )
        return name

    def test_sharded_layer_output_bitwise_equal(self):
        engine, net, x = self._planned_net()
        plan = engine.plan_for((6, 2, 8, 8), 4)
        # Pin every layer to the in-line GEMM for the baseline run.
        for name in list(plan.decisions):
            plan.decisions[name] = replace(
                plan.decisions[name], backend="gemm", shard_mode="", workers=1
            )
        baseline = net.forward(x)
        self._shard_last_gemm_layer(engine)
        sharded = net.forward(x)
        assert np.array_equal(baseline, sharded)
        assert not net.last_run_stats.shard_failures

    def test_injected_shard_fault_degrades_and_completes(self, monkeypatch):
        engine, net, x = self._planned_net()
        plan = engine.plan_for((6, 2, 8, 8), 4)
        for name in list(plan.decisions):
            plan.decisions[name] = replace(
                plan.decisions[name], backend="gemm", shard_mode="", workers=1
            )
        baseline = net.forward(x)
        self._shard_last_gemm_layer(engine)

        boom = {"remaining": 1}

        def flaky_run_layer_shards(kernel, bounds, mode, policy=None, label=""):
            def wrapped(lo, hi):
                if boom["remaining"] > 0:
                    boom["remaining"] -= 1
                    raise RuntimeError("injected shard fault")
                return kernel(lo, hi)

            return run_layer_shards(
                wrapped, bounds, mode, policy=policy, label=label
            )

        monkeypatch.setattr(
            auto_module, "run_layer_shards", flaky_run_layer_shards
        )
        recovered = net.forward(x)
        stats = net.last_run_stats
        assert stats.shard_failures  # the fault was seen and absorbed
        assert np.array_equal(baseline, recovered)

    def test_shard_decision_round_trips_through_plan_file(self):
        engine, net, _ = self._planned_net()
        name = self._shard_last_gemm_layer(engine)
        plan = engine.plan_for((6, 2, 8, 8), 4)
        reloaded = ExecutionPlan.from_json(plan.to_json())
        assert reloaded.decisions[name].shard_mode == "thread"
        assert reloaded.decisions[name].workers == 2
        assert reloaded.sharded_layers == 1


class TestPlanPayloadCompat:
    def test_legacy_payload_defaults_new_fields(self):
        plan = ExecutionPlan(
            key=("dense", (2, 2, 4, 4), 4, 7),
            decisions={
                "0": LayerDecision(
                    name="0", backend="gemm", density=1.0, gemm_seconds=0.01
                )
            },
        )
        payload = plan.to_payload()
        for entry in payload["decisions"]:
            for field in ("source", "predicted_ms", "dense_ops",
                          "shard_mode", "workers"):
                entry.pop(field)
        loaded = ExecutionPlan.from_payload(payload)
        decision = loaded.decisions["0"]
        assert decision.source == "raced"
        assert decision.predicted_ms == 0.0
        assert decision.dense_ops == 0
        assert decision.shard_mode == ""
        assert decision.workers == 1


class TestPersistence:
    def test_cost_model_persists_beside_plan_file(self, tmp_path):
        plan_path = str(tmp_path / "plans.json")
        engine = AutoEngine(plan_path=plan_path)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(50).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert (tmp_path / "plans.json").exists()
        assert (tmp_path / "plans.cost.json").exists()
        # A fresh engine loads both the plans and the measurements.
        peer = AutoEngine(plan_path=plan_path)
        assert peer.plan_for((4, 2, 4, 4), 4) is not None
        assert len(peer.cost_model) == len(engine.cost_model) > 0


class TestPlannerSnapshot:
    def test_snapshot_shape(self):
        engine = AutoEngine(cost_model=ready_cost_model())
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(60).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        snapshot = engine.planner_snapshot()
        assert snapshot["calibration_runs"] == 1
        assert snapshot["replans_triggered"] == 0
        assert snapshot["cost_model"]["plan_ready"] is True
        (entry,) = snapshot["plans"]
        assert entry["source"] == "cost-model"
        assert entry["input_shape"] == [2, 2, 4, 4]
        assert entry["layers"] >= 1

    def test_worker_passthrough_and_fixed_engine_none(self):
        engine = AutoEngine()
        engine.bind(converted_toy())
        worker = EngineWorker(engine, probe_shape=(2, 4, 4))
        try:
            assert worker.planner_snapshot() is not None
        finally:
            worker.shutdown()
        fixed = make_engine("batched")
        fixed.bind(converted_toy())
        worker = EngineWorker(fixed, probe_shape=(2, 4, 4))
        try:
            assert worker.planner_snapshot() is None
        finally:
            worker.shutdown()
