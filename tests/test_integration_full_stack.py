"""Full-stack integration: pipeline -> mapper -> SIA -> models, one flow.

This is the repository's 'does the whole co-design story hang together'
test: train, quantise, convert, compile, run bit-true inference, and
feed the same mapped network through the traffic, latency and power
models — asserting cross-model consistency, not just per-module
correctness.
"""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.config import PYNQ_Z2
from repro.hw.latency import ArchitecturalLatencyModel, LatencyModel
from repro.hw.power import PowerModel
from repro.hw.traffic import TrafficModel
from repro.pipeline import TrainConfig, run_conversion_pipeline
from repro.utils import save_state, load_state


@pytest.fixture(scope="module")
def full_run():
    ds = SyntheticCIFAR(
        num_train=400, num_test=150, noise=1.0, class_overlap=0.55, seed=17
    )
    result = run_conversion_pipeline(
        "vgg11",
        ds,
        width=0.125,
        levels=2,
        timesteps=8,
        max_timesteps=8,
        ann_config=TrainConfig(epochs=3),
        finetune_config=TrainConfig(epochs=2, lr=5e-4),
    )
    mapped = map_network(result.snn.model, calibration_input=ds.train_x[:128])
    sia = SpikingInferenceAccelerator(mapped)
    logits, report = sia.run(ds.test_x, timesteps=8)
    return ds, result, mapped, sia, logits, report


class TestAccuracyChain:
    def test_integer_accuracy_close_to_float(self, full_run):
        ds, result, _, _, logits, _ = full_run
        int_acc = float((logits.argmax(1) == ds.test_y).mean())
        assert abs(int_acc - result.snn_accuracy) < 0.08

    def test_quant_gap_small(self, full_run):
        _, result, _, _, _, _ = full_run
        assert result.quant_accuracy >= result.ann_accuracy - 0.15

    def test_snn_within_band_of_ann(self, full_run):
        _, result, _, _, _, _ = full_run
        assert result.snn_accuracy >= result.ann_accuracy - 0.12


class TestCrossModelConsistency:
    def test_spike_rates_feed_latency_model(self, full_run):
        """Measured rates -> architectural cycles ~ simulated cycles."""
        _, _, mapped, _, _, report = full_run
        model = ArchitecturalLatencyModel(PYNQ_Z2, event_driven=True)
        # Pick a mid-network spiking conv layer (not the PS frame layer).
        idx = 3
        layer = mapped.layers[idx]
        stat = report.layers[idx]
        measured_cycles = stat.core_cycles / report.batch_size
        # Input spike rate of this layer = output rate of its producer.
        in_rate = report.layers[layer.input_index].spike_rate
        predicted = model.conv_cycles(layer.config, report.timesteps, in_rate)
        # Aggregation cycles are extra in the analytical figure.
        assert predicted == pytest.approx(measured_cycles, rel=0.5)

    def test_traffic_versus_simulated_spikes(self, full_run):
        """The traffic model's spike volume bounds the simulated count."""
        _, _, mapped, _, _, report = full_run
        traffic = TrafficModel(PYNQ_Z2).network_traffic(mapped, timesteps=8)
        # Simulated spikes (events) must fit within the binary planes
        # the traffic model budgets for (bits transferred >= spikes).
        for t_layer, s_layer in zip(traffic.layers[1:], report.layers[1:]):
            if s_layer.neuron_steps == 0:
                continue
            spikes_per_inference = s_layer.spike_count / report.batch_size
            budget_bits = t_layer.spike_out_bytes * 8
            assert spikes_per_inference <= budget_bits

    def test_latency_model_accepts_measured_rates(self, full_run):
        _, _, mapped, _, _, report = full_run
        lat = LatencyModel(PYNQ_Z2)
        configs = [l.config for l in mapped.layers]
        rates = [
            max(s.spike_rate, 0.01) if s.neuron_steps else 0.12
            for s in report.layers
        ]
        latencies = lat.network_latency(configs, timesteps=8, spike_rates=rates)
        total_ms = sum(l.milliseconds for l in latencies)
        # 9 layers, ~1 ms each + the MMIO-bound FC.
        assert 8.0 < total_ms < 80.0

    def test_power_at_observed_activity(self, full_run):
        _, _, _, _, _, report = full_run
        rates = report.spike_rates()
        mean_rate = float(np.mean(rates))
        power = PowerModel().total_watts(activity=min(1.0, 3 * mean_rate))
        assert 1.3 < power < 1.54 + 1e-6


class TestCheckpointing:
    def test_quant_model_roundtrip(self, full_run, tmp_path):
        ds, result, _, _, _, _ = full_run
        from repro.pipeline import build_quantized_twin
        from repro.pipeline.trainer import evaluate_model

        path = save_state(result.quant_model, tmp_path / "quant.npz",
                          metadata={"stage": "finetuned"})
        fresh = build_quantized_twin(
            "vgg11", width=0.125, num_classes=10, levels=2, seed=99
        )
        fresh, meta = load_state(fresh, path)
        assert meta["stage"] == "finetuned"
        acc_orig = evaluate_model(result.quant_model, ds.test_x, ds.test_y)
        acc_loaded = evaluate_model(fresh, ds.test_x, ds.test_y)
        assert acc_orig == acc_loaded
