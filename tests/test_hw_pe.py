"""Bit-true processing-element tests."""

import numpy as np
import pytest

from repro.hw.config import PYNQ_Z2, ArchConfig
from repro.hw.pe import ProcessingElement


class TestAccumulateRow:
    def test_spike_selects_weight(self):
        pe = ProcessingElement()
        cycles = pe.accumulate_row([1, 0, 1], [10, 20, 30])
        assert cycles == 1
        assert pe.psum == 40

    def test_no_spike_is_zero_cycles_event_driven(self):
        pe = ProcessingElement(event_driven=True)
        cycles = pe.accumulate_row([0, 0, 0], [10, 20, 30])
        assert cycles == 0
        assert pe.psum == 0
        assert pe.stats.skipped_rows == 1

    def test_dense_mode_always_costs_cycle(self):
        pe = ProcessingElement(event_driven=False)
        assert pe.accumulate_row([0, 0, 0], [1, 2, 3]) == 1

    def test_negative_weights(self):
        pe = ProcessingElement()
        pe.accumulate_row([1, 1, 0], [-5, 3, 100])
        assert pe.psum == -2

    def test_psum_saturates_at_16_bits(self):
        pe = ProcessingElement()
        for _ in range(400):
            pe.accumulate_row([1, 1, 1], [127, 127, 127])
        assert pe.psum == 32767

    def test_rejects_wide_rows(self):
        pe = ProcessingElement()
        with pytest.raises(ValueError):
            pe.accumulate_row([1, 1, 1, 1], [1, 2, 3, 4])

    def test_rejects_non_binary_spikes(self):
        pe = ProcessingElement()
        with pytest.raises(ValueError):
            pe.accumulate_row([2, 0, 0], [1, 2, 3])

    def test_rejects_oversized_weights(self):
        pe = ProcessingElement()
        with pytest.raises(ValueError):
            pe.accumulate_row([1, 0, 0], [200, 0, 0])

    def test_synaptic_ops_counted(self):
        pe = ProcessingElement()
        pe.accumulate_row([1, 1, 0], [1, 1, 1])
        assert pe.stats.synaptic_ops == 2


class TestComputeKernel:
    def test_3x3_takes_4_cycles(self):
        # The paper's schedule: one cycle per row + one finalize cycle.
        pe = ProcessingElement()
        spikes = np.ones((3, 3), np.int64)
        weights = np.ones((3, 3), np.int64)
        psum, cycles = pe.compute_kernel(spikes, weights)
        assert cycles == 4
        assert psum == 9

    @pytest.mark.parametrize("k,expected", [(3, 4), (5, 11), (7, 22), (11, 45)])
    def test_kernel_cycles_match_arch_formula(self, k, expected):
        pe = ProcessingElement()
        spikes = np.ones((k, k), np.int64)
        weights = np.ones((k, k), np.int64)
        _, cycles = pe.compute_kernel(spikes, weights)
        assert cycles == expected == PYNQ_Z2.kernel_cycles(k)

    def test_event_driven_skips_silent_rows(self):
        pe = ProcessingElement(event_driven=True)
        spikes = np.zeros((3, 3), np.int64)
        spikes[1, 1] = 1
        _, cycles = pe.compute_kernel(spikes, np.ones((3, 3), np.int64))
        assert cycles == 2  # one active row + finalize

    def test_psum_accumulates_across_kernels(self):
        # Multi-input-channel accumulation chains on the same psum.
        pe = ProcessingElement()
        spikes = np.ones((3, 3), np.int64)
        weights = np.full((3, 3), 2, np.int64)
        pe.compute_kernel(spikes, weights)
        psum, _ = pe.compute_kernel(spikes, weights)
        assert psum == 36

    def test_reset(self):
        pe = ProcessingElement()
        pe.compute_kernel(np.ones((3, 3), np.int64), np.ones((3, 3), np.int64))
        pe.reset()
        assert pe.psum == 0

    def test_shape_mismatch(self):
        pe = ProcessingElement()
        with pytest.raises(ValueError):
            pe.compute_kernel(np.ones((3, 3)), np.ones((3, 2)))

    def test_matches_dot_product(self):
        rng = np.random.default_rng(0)
        spikes = (rng.random((5, 5)) < 0.4).astype(np.int64)
        weights = rng.integers(-128, 128, size=(5, 5))
        pe = ProcessingElement()
        psum, _ = pe.compute_kernel(spikes, weights)
        assert psum == int((spikes * weights).sum())
