"""SpikeStream dataflow acceptance: engines, accelerator, hw traffic.

The tentpole contract: running `SparseEventEngine` on a COO
`SpikeStream` must produce *bit-identical* predictions and
`performed_ops` to the dense-input path on the VGG and ResNet test
models — the stream carries coordinates across layers, it never changes
arithmetic — and the hardware Table-1/Table-4/traffic experiments must
accept a measured spike trace sourced from stream metadata.
"""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR, direct_encode_stream, rate_encode_stream
from repro.pipeline import build_quantized_twin
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.spikes import SpikeStream
from repro.tensor import Tensor, no_grad

from test_snn_engine import converted_pooled_toy, converted_resnet

TIMESTEPS = 4


@pytest.fixture(scope="module")
def converted_vgg():
    """A BN-warmed converted VGG at the repo's benchmark geometry."""
    model = build_quantized_twin(
        "vgg11", width=0.125, num_classes=10, levels=2, seed=0
    )
    rng = np.random.default_rng(1)
    model.train()
    with no_grad():
        for _ in range(2):
            model(Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


@pytest.fixture(scope="module")
def frames():
    return SyntheticCIFAR(num_train=8, num_test=6, noise=0.8, seed=3).test_x[:4]


def _run_both(model, x, engine):
    """(logits, stats) for the dense-input and stream-input paths."""
    net = SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
    dense_logits = net.forward(x)
    dense_stats = net.last_run_stats
    stream_logits = net.forward(direct_encode_stream(x, TIMESTEPS))
    stream_stats = net.last_run_stats
    return dense_logits, dense_stats, stream_logits, stream_stats


class TestStreamEquivalence:
    """Acceptance: bit-identical predictions and performed_ops between
    the dense-input and stream-input event-engine paths."""

    def test_vgg_bit_identical(self, converted_vgg, frames):
        ld, sd, ls, ss = _run_both(converted_vgg, frames, "event")
        assert np.array_equal(ld, ls)  # logits, not just predictions
        assert np.array_equal(ld.argmax(1), ls.argmax(1))
        assert sd.total_synaptic_ops == ss.total_synaptic_ops
        assert sd.total_dense_synaptic_ops == ss.total_dense_synaptic_ops
        for a, b in zip(sd.layers, ss.layers):
            assert a.synaptic_ops == b.synaptic_ops, a.name

    def test_resnet_bit_identical(self, frames):
        model = converted_resnet()
        ld, sd, ls, ss = _run_both(model, frames, "event")
        assert np.array_equal(ld, ls)
        assert sd.total_synaptic_ops == ss.total_synaptic_ops

    def test_stream_densities_come_from_metadata(self, converted_vgg, frames):
        """The profiler's density record on the stream path (sourced
        from carried coordinates) equals the dense path's scans."""
        _, sd, _, ss = _run_both(converted_vgg, frames, "event")
        for a, b in zip(sd.layers, ss.layers):
            if a.kind != "neuron":
                assert a.input_nonzero == b.input_nonzero, a.name
                assert a.input_size == b.input_size, a.name

    def test_pooled_chain_bit_identical(self, ):
        model = converted_pooled_toy()
        x = np.random.default_rng(11).normal(size=(4, 2, 8, 8)).astype(np.float32)
        ld, sd, ls, ss = _run_both(model, x, "event")
        assert np.array_equal(ld, ls)
        assert sd.total_synaptic_ops == ss.total_synaptic_ops


class TestAllEnginesAcceptStreams:
    def test_binary_stream_agrees_across_backends(self, converted_vgg, frames):
        stream = rate_encode_stream(frames, 6, rng=np.random.default_rng(5))
        logits = {}
        ops = {}
        for engine in ("dense", "event", "batched", "auto"):
            net = SpikingNetwork(converted_vgg, timesteps=6, engine=engine)
            logits[engine] = net.forward(stream)
            ops[engine] = net.last_run_stats.total_synaptic_ops
        for engine in ("event", "batched", "auto"):
            assert np.allclose(logits["dense"], logits[engine], atol=1e-4), engine
            assert np.array_equal(
                logits["dense"].argmax(1), logits[engine].argmax(1)
            ), engine
        # The event backend's op reduction survives the stream path.
        assert ops["event"] < ops["dense"]
        assert ops["batched"] == ops["dense"]  # GEMM backends bill dense MACs

    def test_per_step_stream_matches_dense_input(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        steps_dense = net.forward_per_step(frames)
        steps_stream = net.forward_per_step(direct_encode_stream(frames, TIMESTEPS))
        assert len(steps_stream) == TIMESTEPS
        for a, b in zip(steps_dense, steps_stream):
            assert np.array_equal(a, b)

    def test_stream_supplies_default_timesteps(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        net.forward(stream)  # no explicit T: the stream's 3 wins
        assert net.last_run_stats.timesteps == 3

    def test_explicit_timestep_mismatch_fails(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="SpikeStream"):
            net.forward(stream, timesteps=8)

    def test_accuracy_helpers_accept_streams(self, converted_vgg, frames):
        """accuracy()/accuracy_per_step() resolve T from the stream like
        forward() does (streams slice per evaluation batch)."""
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        y = np.zeros(stream.batch_size, dtype=np.int64)
        acc = net.accuracy(stream, y, batch_size=2)
        per_step = net.accuracy_per_step(stream, y, batch_size=2)
        assert 0.0 <= acc <= 1.0
        assert len(per_step) == 3  # the stream's T, not the default 8
        assert per_step[-1] == pytest.approx(acc)


class TestStreamSharding:
    def test_thread_shards_match_single(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(7))
        single = net.forward(stream)
        ops = net.last_run_stats.total_synaptic_ops
        sharded = net.forward(stream, workers=2, shard_mode="thread")
        assert np.allclose(single, sharded, atol=1e-5)
        assert net.last_run_stats.total_synaptic_ops == ops
        assert net.last_run_stats.workers == 2

    def test_fork_shards_match_single(self, converted_vgg, frames):
        from repro.snn.engines import fork_available

        if not fork_available():
            pytest.skip("fork unavailable")
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(8))
        single = net.forward(stream)
        sharded = net.forward(stream, workers=2, shard_mode="fork")
        assert np.allclose(single, sharded, atol=1e-5)


class TestHardwareAcceptsStreams:
    """Acceptance: hw Table-1/Table-4/traffic take a measured spike
    trace sourced from SpikeStream metadata, and the integer SIA runs
    an event stream directly."""

    @pytest.fixture(scope="class")
    def mapped_and_trace(self, converted_vgg, frames):
        from repro.hw import map_network

        mapped = map_network(converted_vgg, calibration_input=frames)
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(9))
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        net.forward(stream)
        return mapped, net.last_run_stats.spike_trace(), stream

    def test_accelerator_runs_event_stream(self, mapped_and_trace):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, stream = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        logits, report = sia.run(stream)
        assert logits.shape == (stream.batch_size, 10)
        assert report.engine == "sia-event-stream"
        assert report.timesteps == stream.timesteps
        assert report.total_synaptic_ops > 0

    def test_accelerator_rejects_explicit_timestep_mismatch(self, mapped_and_trace):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, stream = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        with pytest.raises(ValueError, match="SpikeStream"):
            sia.run(stream, timesteps=stream.timesteps + 1)

    def test_accelerator_rejects_valued_streams(self, mapped_and_trace, frames):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, _ = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        with pytest.raises(ValueError, match="binary"):
            sia.run(direct_encode_stream(frames, TIMESTEPS))

    def test_traffic_model_accepts_trace_and_stream(self, mapped_and_trace):
        from repro.hw import PYNQ_Z2, TrafficModel

        mapped, trace, stream = mapped_and_trace
        model = TrafficModel(PYNQ_Z2)
        dense = model.network_traffic(mapped, timesteps=TIMESTEPS)
        measured = model.network_traffic(
            mapped, timesteps=TIMESTEPS, measured=trace, input_stream=stream
        )
        assert measured.measured and not dense.measured
        # Event-coded transfers never cost more than the dense bitmap
        # (each plane ships the cheaper of bitmap and AER coding).
        assert measured.total_bytes <= dense.total_bytes
        spikes_dense = sum(l.spike_in_bytes + l.spike_out_bytes for l in dense.layers)
        spikes_measured = sum(
            l.spike_in_bytes + l.spike_out_bytes for l in measured.layers
        )
        assert spikes_measured < spikes_dense

    def test_table1_and_table4_accept_trace(self, mapped_and_trace):
        from repro.eval.experiments import table1_experiment, table4_experiment

        _, trace, _ = mapped_and_trace
        rows = table1_experiment(measured={"vgg11": trace})
        assert rows["vgg11"]  # resolved against the mapped geometry
        result = table4_experiment(run_stats=trace)
        assert result["measured_op_saving"] == pytest.approx(
            trace.synaptic_op_saving
        )
        assert result["dense_equivalent_gops"] > 0

    def test_spike_trace_requires_profiling(self, converted_vgg, frames):
        from repro.snn import SparseEventEngine

        net = SpikingNetwork(
            converted_vgg,
            timesteps=TIMESTEPS,
            engine=SparseEventEngine(profile_layers=False),
        )
        net.forward(frames)
        with pytest.raises(ValueError, match="profile_layers"):
            net.last_run_stats.spike_trace()
