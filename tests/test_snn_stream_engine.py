"""SpikeStream dataflow acceptance: engines, accelerator, hw traffic.

The tentpole contract: running `SparseEventEngine` on a COO
`SpikeStream` must produce *bit-identical* predictions and
`performed_ops` to the dense-input path on the VGG and ResNet test
models — the stream carries coordinates across layers, it never changes
arithmetic — and the hardware Table-1/Table-4/traffic experiments must
accept a measured spike trace sourced from stream metadata.
"""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR, direct_encode_stream, rate_encode_stream
from repro.pipeline import build_quantized_twin
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.spikes import SpikeStream
from repro.tensor import Tensor, no_grad

from test_snn_engine import converted_pooled_toy, converted_resnet

TIMESTEPS = 4


@pytest.fixture(scope="module")
def converted_vgg():
    """A BN-warmed converted VGG at the repo's benchmark geometry."""
    model = build_quantized_twin(
        "vgg11", width=0.125, num_classes=10, levels=2, seed=0
    )
    rng = np.random.default_rng(1)
    model.train()
    with no_grad():
        for _ in range(2):
            model(Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


@pytest.fixture(scope="module")
def frames():
    return SyntheticCIFAR(num_train=8, num_test=6, noise=0.8, seed=3).test_x[:4]


def _run_both(model, x, engine):
    """(logits, stats) for the dense-input and stream-input paths."""
    net = SpikingNetwork(model, timesteps=TIMESTEPS, engine=engine)
    dense_logits = net.forward(x)
    dense_stats = net.last_run_stats
    stream_logits = net.forward(direct_encode_stream(x, TIMESTEPS))
    stream_stats = net.last_run_stats
    return dense_logits, dense_stats, stream_logits, stream_stats


class TestStreamEquivalence:
    """Acceptance: bit-identical predictions and performed_ops between
    the dense-input and stream-input event-engine paths."""

    def test_vgg_bit_identical(self, converted_vgg, frames):
        ld, sd, ls, ss = _run_both(converted_vgg, frames, "event")
        assert np.array_equal(ld, ls)  # logits, not just predictions
        assert np.array_equal(ld.argmax(1), ls.argmax(1))
        assert sd.total_synaptic_ops == ss.total_synaptic_ops
        assert sd.total_dense_synaptic_ops == ss.total_dense_synaptic_ops
        for a, b in zip(sd.layers, ss.layers):
            assert a.synaptic_ops == b.synaptic_ops, a.name

    def test_resnet_bit_identical(self, frames):
        model = converted_resnet()
        ld, sd, ls, ss = _run_both(model, frames, "event")
        assert np.array_equal(ld, ls)
        assert sd.total_synaptic_ops == ss.total_synaptic_ops

    def test_stream_densities_come_from_metadata(self, converted_vgg, frames):
        """The profiler's density record on the stream path (sourced
        from carried coordinates) equals the dense path's scans."""
        _, sd, _, ss = _run_both(converted_vgg, frames, "event")
        for a, b in zip(sd.layers, ss.layers):
            if a.kind != "neuron":
                assert a.input_nonzero == b.input_nonzero, a.name
                assert a.input_size == b.input_size, a.name

    def test_pooled_chain_bit_identical(self, ):
        model = converted_pooled_toy()
        x = np.random.default_rng(11).normal(size=(4, 2, 8, 8)).astype(np.float32)
        ld, sd, ls, ss = _run_both(model, x, "event")
        assert np.array_equal(ld, ls)
        assert sd.total_synaptic_ops == ss.total_synaptic_ops


def _sparse_stream(shape, timesteps, p, seed, values=None):
    """A random binary (or valued) COO stream at the given density."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((timesteps,) + shape) < p).astype(np.float32)
    if values is not None:
        dense *= values
    return SpikeStream.from_dense(dense)


class TestEventBatchedBitExact:
    """Acceptance: the COO-native event-batched fast paths (conv/linear
    gather, pooling, BN-at-sites, sparse neuron update) are bitwise
    equivalent to the dense time-batched reference — same logits, same
    per-step outputs, same billed dense ops, same SpikeTrace densities."""

    def _both(self, model, x, timesteps=TIMESTEPS):
        out = {}
        for engine in ("batched", "event-batched"):
            net = SpikingNetwork(model, timesteps=timesteps, engine=engine)
            out[engine] = (net.forward(x), net.last_run_stats)
        return out["batched"], out["event-batched"]

    def test_vgg_stream_bitwise(self, converted_vgg, frames):
        stream = _sparse_stream(frames.shape, TIMESTEPS, 0.01, seed=21)
        (ld, sd), (le, se) = self._both(converted_vgg, stream)
        assert np.array_equal(ld, le)
        # The dense billing side must agree layer by layer; the event
        # side performs (and bills) at most that many MACs.
        for a, b in zip(sd.layers, se.layers):
            assert a.dense_synaptic_ops == b.dense_synaptic_ops, a.name
            assert b.synaptic_ops <= a.synaptic_ops, a.name
        assert se.total_synaptic_ops <= sd.total_synaptic_ops

    def test_resnet_stream_bitwise(self, frames):
        model = converted_resnet()
        stream = _sparse_stream(frames.shape, TIMESTEPS, 0.02, seed=22)
        (ld, sd), (le, se) = self._both(model, stream)
        assert np.array_equal(ld, le)
        assert se.total_dense_synaptic_ops == sd.total_dense_synaptic_ops

    def test_vgg_dense_frames_parity(self, converted_vgg, frames):
        """Dense (frame) inputs take the same interceptors — parity must
        hold when most layers fall back to the GEMM path.  Tolerance is
        one ulp, not zero: a row-subset GEMM can hit a different BLAS
        micro-kernel than the full-batch GEMM (kernel choice depends on
        M), legitimately moving the last bit of a gathered row."""
        (ld, _), (le, _) = self._both(converted_vgg, frames)
        assert np.array_equal(ld.argmax(1), le.argmax(1))
        assert np.allclose(ld, le, atol=1e-6)

    def test_pooled_chain_bitwise(self):
        model = converted_pooled_toy()
        stream = _sparse_stream((4, 2, 8, 8), TIMESTEPS, 0.05, seed=23)
        (ld, _), (le, _) = self._both(model, stream)
        assert np.array_equal(ld, le)

    def test_per_step_outputs_bitwise(self, converted_vgg, frames):
        stream = _sparse_stream(frames.shape, TIMESTEPS, 0.01, seed=24)
        nets = {
            e: SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine=e)
            for e in ("batched", "event-batched")
        }
        steps_b = nets["batched"].forward_per_step(stream)
        steps_e = nets["event-batched"].forward_per_step(stream)
        assert len(steps_e) == TIMESTEPS
        for a, b in zip(steps_b, steps_e):
            assert np.array_equal(a, b)

    def test_spike_trace_densities_match(self, converted_vgg, frames):
        stream = _sparse_stream(frames.shape, TIMESTEPS, 0.01, seed=25)
        (_, sd), (_, se) = self._both(converted_vgg, stream)
        trace_b = sd.spike_trace()
        trace_e = se.spike_trace()
        assert trace_b.rates() == trace_e.rates()
        for a, b in zip(sd.layers, se.layers):
            if a.kind == "neuron":
                assert a.spike_rate == b.spike_rate, a.name

    def test_sparse_neuron_background_paths(self, monkeypatch):
        """The background-trajectory neuron update engages on sparse
        site sets and stays bitwise for both a silent background
        (bias-free conv: untouched sites never fire) and a firing one
        (large conv bias: every untouched site follows the shared
        background trajectory)."""
        from repro import nn
        from repro.snn.engines import event_batched as eb_mod
        from repro.snn.neurons import IFNeuron

        engaged = []
        orig = eb_mod.EventBatchedEngine._sparse_neuron

        def spy(self, module, data, sites):
            out = orig(self, module, data, sites)
            engaged.append(out is not None)
            return out

        monkeypatch.setattr(eb_mod.EventBatchedEngine, "_sparse_neuron", spy)

        rng = np.random.default_rng(4)
        for bias in (None, 1.5):
            conv = nn.Conv2d(2, 6, 3, padding=1, bias=bias is not None, rng=rng)
            if bias is not None:
                conv.bias.data[:] = bias  # background fires every step
            model = nn.Sequential(conv, IFNeuron(threshold=1.0))
            model.eval()
            stream = _sparse_stream((4, 2, 24, 24), TIMESTEPS, 0.005, seed=26)
            engaged.clear()
            (ld, sd), (le, se) = self._both(model, stream)
            assert any(engaged), f"sparse neuron path not taken (bias={bias})"
            assert np.array_equal(ld, le), f"bias={bias}"
            for a, b in zip(sd.layers, se.layers):
                if a.kind == "neuron":
                    assert a.spike_rate == b.spike_rate

    def test_sparse_neuron_after_bn_background(self, monkeypatch):
        """BN-at-sites hands the neuron a nonzero per-channel background
        (the folded zero-input response h0); the shared-trajectory
        update must stay bitwise through that path too."""
        from repro import nn
        from repro.snn.engines import event_batched as eb_mod
        from repro.snn.neurons import IFNeuron

        engaged = []
        orig = eb_mod.EventBatchedEngine._sparse_neuron

        def spy(self, module, data, sites):
            out = orig(self, module, data, sites)
            engaged.append(out is not None)
            return out

        monkeypatch.setattr(eb_mod.EventBatchedEngine, "_sparse_neuron", spy)

        rng = np.random.default_rng(5)
        bn = nn.BatchNorm2d(6)
        bn.running_mean[:] = rng.normal(0, 0.05, 6).astype(np.float32)
        bn.running_var[:] = 1 + rng.normal(0, 0.1, 6).astype(np.float32) ** 2
        model = nn.Sequential(
            nn.Conv2d(2, 6, 3, padding=1, bias=False, rng=rng),
            bn,
            IFNeuron(threshold=1.0),
        )
        model.eval()
        stream = _sparse_stream((4, 2, 24, 24), TIMESTEPS, 0.005, seed=27)
        (ld, _), (le, _) = self._both(model, stream)
        assert any(engaged), "sparse neuron path not taken after BN"
        assert np.array_equal(ld, le)


class TestStackedRoundTrip:
    """Multi-step coordinate batches: ``stacked()`` folds a stream's T
    per-step coordinate sets into one (T*N)-batch StepSpikes and
    ``from_stacked`` recovers the stream exactly."""

    def test_binary_round_trip(self, frames):
        stream = _sparse_stream(frames.shape, 5, 0.03, seed=31)
        stacked = stream.stacked()
        assert stacked.shape[0] == 5 * stream.batch_size
        back = SpikeStream.from_stacked(stacked, 5)
        assert back.timesteps == stream.timesteps
        assert back.shape == stream.shape
        assert np.array_equal(back.to_dense(), stream.to_dense())
        for t in range(stream.timesteps):
            a, b = stream.step(t), back.step(t)
            assert np.array_equal(
                a.to_dense(), b.to_dense()
            ), f"step {t} differs"

    def test_valued_round_trip(self, frames):
        rng = np.random.default_rng(32)
        values = rng.normal(1.0, 0.2, (5,) + frames.shape).astype(np.float32)
        stream = _sparse_stream(frames.shape, 5, 0.03, seed=33, values=values)
        assert stream.values is not None
        back = SpikeStream.from_stacked(stream.stacked(), 5)
        assert np.array_equal(back.to_dense(), stream.to_dense())

    def test_stacked_density_matches(self, frames):
        stream = _sparse_stream(frames.shape, 5, 0.03, seed=34)
        assert stream.stacked().density == pytest.approx(stream.density)

    def test_empty_steps_survive(self):
        dense = np.zeros((3, 2, 1, 4, 4), dtype=np.float32)
        dense[1, 0, 0, 1, 2] = 1.0  # only the middle step has an event
        stream = SpikeStream.from_dense(dense)
        back = SpikeStream.from_stacked(stream.stacked(), 3)
        assert np.array_equal(back.to_dense(), dense)


class TestAllEnginesAcceptStreams:
    def test_binary_stream_agrees_across_backends(self, converted_vgg, frames):
        stream = rate_encode_stream(frames, 6, rng=np.random.default_rng(5))
        logits = {}
        ops = {}
        for engine in ("dense", "event", "batched", "event-batched", "auto"):
            net = SpikingNetwork(converted_vgg, timesteps=6, engine=engine)
            logits[engine] = net.forward(stream)
            ops[engine] = net.last_run_stats.total_synaptic_ops
        for engine in ("event", "batched", "event-batched", "auto"):
            assert np.allclose(logits["dense"], logits[engine], atol=1e-4), engine
            assert np.array_equal(
                logits["dense"].argmax(1), logits[engine].argmax(1)
            ), engine
        # The batched-COO path is bitwise against its dense reference.
        assert np.array_equal(logits["batched"], logits["event-batched"])
        # The event backends' op reduction survives the stream path.
        assert ops["event"] < ops["dense"]
        assert ops["event-batched"] <= ops["dense"]
        assert ops["batched"] == ops["dense"]  # GEMM backends bill dense MACs

    def test_per_step_stream_matches_dense_input(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        steps_dense = net.forward_per_step(frames)
        steps_stream = net.forward_per_step(direct_encode_stream(frames, TIMESTEPS))
        assert len(steps_stream) == TIMESTEPS
        for a, b in zip(steps_dense, steps_stream):
            assert np.array_equal(a, b)

    def test_stream_supplies_default_timesteps(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        net.forward(stream)  # no explicit T: the stream's 3 wins
        assert net.last_run_stats.timesteps == 3

    def test_explicit_timestep_mismatch_fails(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        with pytest.raises(ValueError, match="SpikeStream"):
            net.forward(stream, timesteps=8)

    def test_accuracy_helpers_accept_streams(self, converted_vgg, frames):
        """accuracy()/accuracy_per_step() resolve T from the stream like
        forward() does (streams slice per evaluation batch)."""
        net = SpikingNetwork(converted_vgg, timesteps=8, engine="event")
        stream = rate_encode_stream(frames, 3, rng=np.random.default_rng(6))
        y = np.zeros(stream.batch_size, dtype=np.int64)
        acc = net.accuracy(stream, y, batch_size=2)
        per_step = net.accuracy_per_step(stream, y, batch_size=2)
        assert 0.0 <= acc <= 1.0
        assert len(per_step) == 3  # the stream's T, not the default 8
        assert per_step[-1] == pytest.approx(acc)


class TestStreamSharding:
    def test_thread_shards_match_single(self, converted_vgg, frames):
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(7))
        single = net.forward(stream)
        ops = net.last_run_stats.total_synaptic_ops
        sharded = net.forward(stream, workers=2, shard_mode="thread")
        assert np.allclose(single, sharded, atol=1e-5)
        assert net.last_run_stats.total_synaptic_ops == ops
        assert net.last_run_stats.workers == 2

    def test_fork_shards_match_single(self, converted_vgg, frames):
        from repro.snn.engines import fork_available

        if not fork_available():
            pytest.skip("fork unavailable")
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(8))
        single = net.forward(stream)
        sharded = net.forward(stream, workers=2, shard_mode="fork")
        assert np.allclose(single, sharded, atol=1e-5)


class TestHardwareAcceptsStreams:
    """Acceptance: hw Table-1/Table-4/traffic take a measured spike
    trace sourced from SpikeStream metadata, and the integer SIA runs
    an event stream directly."""

    @pytest.fixture(scope="class")
    def mapped_and_trace(self, converted_vgg, frames):
        from repro.hw import map_network

        mapped = map_network(converted_vgg, calibration_input=frames)
        stream = rate_encode_stream(frames, TIMESTEPS, rng=np.random.default_rng(9))
        net = SpikingNetwork(converted_vgg, timesteps=TIMESTEPS, engine="event")
        net.forward(stream)
        return mapped, net.last_run_stats.spike_trace(), stream

    def test_accelerator_runs_event_stream(self, mapped_and_trace):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, stream = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        logits, report = sia.run(stream)
        assert logits.shape == (stream.batch_size, 10)
        assert report.engine == "sia-event-stream"
        assert report.timesteps == stream.timesteps
        assert report.total_synaptic_ops > 0

    def test_accelerator_rejects_explicit_timestep_mismatch(self, mapped_and_trace):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, stream = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        with pytest.raises(ValueError, match="SpikeStream"):
            sia.run(stream, timesteps=stream.timesteps + 1)

    def test_accelerator_rejects_valued_streams(self, mapped_and_trace, frames):
        from repro.hw import SpikingInferenceAccelerator

        mapped, _, _ = mapped_and_trace
        sia = SpikingInferenceAccelerator(mapped)
        with pytest.raises(ValueError, match="binary"):
            sia.run(direct_encode_stream(frames, TIMESTEPS))

    def test_traffic_model_accepts_trace_and_stream(self, mapped_and_trace):
        from repro.hw import PYNQ_Z2, TrafficModel

        mapped, trace, stream = mapped_and_trace
        model = TrafficModel(PYNQ_Z2)
        dense = model.network_traffic(mapped, timesteps=TIMESTEPS)
        measured = model.network_traffic(
            mapped, timesteps=TIMESTEPS, measured=trace, input_stream=stream
        )
        assert measured.measured and not dense.measured
        # Event-coded transfers never cost more than the dense bitmap
        # (each plane ships the cheaper of bitmap and AER coding).
        assert measured.total_bytes <= dense.total_bytes
        spikes_dense = sum(l.spike_in_bytes + l.spike_out_bytes for l in dense.layers)
        spikes_measured = sum(
            l.spike_in_bytes + l.spike_out_bytes for l in measured.layers
        )
        assert spikes_measured < spikes_dense

    def test_table1_and_table4_accept_trace(self, mapped_and_trace):
        from repro.eval.experiments import table1_experiment, table4_experiment

        _, trace, _ = mapped_and_trace
        rows = table1_experiment(measured={"vgg11": trace})
        assert rows["vgg11"]  # resolved against the mapped geometry
        result = table4_experiment(run_stats=trace)
        assert result["measured_op_saving"] == pytest.approx(
            trace.synaptic_op_saving
        )
        assert result["dense_equivalent_gops"] > 0

    def test_spike_trace_requires_profiling(self, converted_vgg, frames):
        from repro.snn import SparseEventEngine

        net = SpikingNetwork(
            converted_vgg,
            timesteps=TIMESTEPS,
            engine=SparseEventEngine(profile_layers=False),
        )
        net.forward(frames)
        with pytest.raises(ValueError, match="profile_layers"):
            net.last_run_stats.spike_trace()
