"""Weight-initialisation scheme tests."""

import numpy as np
import pytest

from repro.nn import init


class TestKaiming:
    def test_normal_std(self):
        rng = np.random.default_rng(0)
        fan_in = 256
        w = init.kaiming_normal((20000,), fan_in, rng)
        expected = np.sqrt(2.0 / fan_in)
        assert w.std() == pytest.approx(expected, rel=0.05)
        assert w.dtype == np.float32

    def test_uniform_bound(self):
        rng = np.random.default_rng(1)
        fan_in = 64
        w = init.kaiming_uniform((10000,), fan_in, rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / fan_in)
        assert np.abs(w).max() <= bound + 1e-6
        assert np.abs(w).max() > 0.9 * bound  # actually fills the range

    def test_gain_scales(self):
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        a = init.kaiming_normal((1000,), 100, rng1, gain=1.0)
        b = init.kaiming_normal((1000,), 100, rng2, gain=2.0)
        assert b.std() == pytest.approx(2 * a.std(), rel=1e-6)


class TestXavier:
    def test_bound(self):
        rng = np.random.default_rng(3)
        w = init.xavier_uniform((10000,), 100, 200, rng)
        bound = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= bound + 1e-6


class TestConstants:
    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0)
        assert np.all(init.ones((2,)) == 1)
        assert init.zeros((1,)).dtype == np.float32
