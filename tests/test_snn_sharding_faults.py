"""Fault tolerance of sharded execution: supervision, degradation, stats.

Injects failures into child shards — a layer that raises only when
executed off the main process/thread, and one that hangs past the
attempt deadline — and asserts the supervisor's contract: failed shards
retry, then degrade fork -> thread -> serial, the final logits are
bit-identical to an unsharded run, and every failure lands on
``RunStats.shard_failures``.
"""

import logging
import os
import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.snn import SpikingNetwork, convert_to_snn
from repro.snn.engines import sharding
from repro.snn.engines.sharding import (
    ShardExecutionError,
    ShardFailure,
    ShardPolicy,
    fork_available,
    run_supervised,
)
from repro.tensor import Tensor, no_grad

MAIN_PID = os.getpid()


def _in_child() -> bool:
    """True in a fork child or a worker thread, False in the supervisor."""
    return (
        os.getpid() != MAIN_PID
        or threading.current_thread() is not threading.main_thread()
    )


def _in_fork_child() -> bool:
    return os.getpid() != MAIN_PID


class PoisonLayer(nn.Module):
    """Pass-through layer that misbehaves only inside child shards.

    The switch lives on the *class* so it survives both shard
    substrates: fork children inherit the class state copy-on-write and
    thread-shard model clones (``clone_for_inference``) preserve the
    type.  The supervisor's serial fallback runs on the main
    process/thread, where the predicate is false — exactly the
    situation the degradation chain exists for.
    """

    mode = "off"  # "off" | "crash" | "hang"

    def forward(self, x):
        if type(self).mode == "crash" and _in_child():
            raise RuntimeError("injected shard poison")
        if type(self).mode == "hang" and _in_fork_child():
            time.sleep(60.0)
        return x


@pytest.fixture(autouse=True)
def _disarm_poison():
    yield
    PoisonLayer.mode = "off"


def poisoned_network(timesteps=3):
    model = nn.Sequential(
        PoisonLayer(),
        nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(0)),
        nn.BatchNorm2d(4),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 5, rng=np.random.default_rng(1)),
    )
    rng = np.random.default_rng(2)
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 2, 4, 4)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


def batch(n=4, seed=3):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 2, 4, 4)).astype(np.float32)


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ShardPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            ShardPolicy(retries=-1)
        with pytest.raises(ValueError):
            ShardPolicy(backoff=-0.1)

    def test_defaults_are_valid(self):
        policy = ShardPolicy()
        assert policy.timeout is None
        assert policy.retries >= 0


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestCrashDegradation:
    def test_crash_degrades_to_serial_bit_identical(self):
        x = batch()
        model = poisoned_network()
        # Reference: a *clean* sharded run with the same shard bounds.
        # Bit-identity holds across substrates because every substrate
        # runs the same kernels on the same contiguous slice; it does
        # not hold against a different batch split (BLAS may differ in
        # the last ulp between a batch-4 and a batch-2 GEMM).
        reference = SpikingNetwork(model, timesteps=3, workers=2,
                                   shard_mode="thread").forward(x)

        PoisonLayer.mode = "crash"
        net = SpikingNetwork(
            model,
            timesteps=3,
            workers=2,
            shard_mode="fork",
            shard_policy=ShardPolicy(retries=1, backoff=0.01),
        )
        logits = net.forward(x)

        # The poison kills fork children AND thread workers, so only the
        # serial fallback can finish — and it must match exactly.
        assert np.array_equal(logits, reference)
        stats = net.last_run_stats
        assert stats.degraded_shard_mode == "serial"
        failures = stats.shard_failures
        assert failures, "failures must land on RunStats"
        assert all(isinstance(f, ShardFailure) for f in failures)
        assert {f.kind for f in failures} == {"exception"}
        assert {f.mode for f in failures} == {"fork", "thread"}
        # retries=1 => two attempts per substrate for both shards.
        assert len([f for f in failures if f.mode == "fork"]) == 4
        assert all("injected shard poison" in f.error for f in failures)

    def test_clean_run_records_nothing(self):
        x = batch()
        net = SpikingNetwork(poisoned_network(), timesteps=3, workers=2,
                             shard_mode="fork")
        net.forward(x)
        assert net.last_run_stats.shard_failures == []
        assert net.last_run_stats.degraded_shard_mode == ""


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestHangDegradation:
    def test_hang_is_detected_and_degrades(self):
        x = batch()
        model = poisoned_network()
        reference = SpikingNetwork(model, timesteps=3, workers=2,
                                   shard_mode="thread").forward(x)

        PoisonLayer.mode = "hang"
        net = SpikingNetwork(
            model,
            timesteps=3,
            workers=2,
            shard_mode="fork",
            shard_policy=ShardPolicy(timeout=1.0, retries=0, backoff=0.01),
        )
        start = time.monotonic()
        logits = net.forward(x)
        elapsed = time.monotonic() - start

        # The hang only triggers in fork children, so threads recover.
        assert np.array_equal(logits, reference)
        stats = net.last_run_stats
        assert stats.degraded_shard_mode == "thread"
        assert {f.kind for f in stats.shard_failures} == {"timeout"}
        assert {f.mode for f in stats.shard_failures} == {"fork"}
        # Hang detection means the deadline bounds the wait, not the
        # 60 s sleep; generous slack for pool setup and the retry wave.
        assert elapsed < 30.0


class TestSupervisor:
    def test_serial_failure_exhausts_chain(self):
        def always_fails(i):
            raise ValueError(f"task {i} is doomed")

        with pytest.raises(ShardExecutionError) as excinfo:
            run_supervised(
                count=2,
                mode="serial",
                policy=ShardPolicy(retries=1, backoff=0.0),
                serial_fn=always_fails,
            )
        failures = excinfo.value.failures
        assert len(failures) == 4  # 2 tasks x 2 attempts
        assert all(f.mode == "serial" for f in failures)
        assert all("doomed" in f.error for f in failures)

    def test_retry_recovers_transient_failure(self):
        attempts = {}

        def flaky(i):
            attempts[i] = attempts.get(i, 0) + 1
            if attempts[i] == 1:
                raise RuntimeError("transient")
            return i * 10

        outcome = run_supervised(
            count=3,
            mode="serial",
            policy=ShardPolicy(retries=1, backoff=0.0),
            serial_fn=flaky,
        )
        assert outcome.results == [0, 10, 20]
        assert outcome.degraded_mode == ""  # recovered without degrading
        assert len(outcome.failures) == 3
        assert all(f.attempt == 1 for f in outcome.failures)

    def test_thread_timeout_poisons_lent_pool(self):
        discarded = []

        def slow_then_fine(i):
            if not discarded:  # first attempt only
                time.sleep(1.5)
            return i

        outcome = run_supervised(
            count=1,
            mode="thread",
            policy=ShardPolicy(timeout=0.2, retries=0, backoff=0.0),
            serial_fn=slow_then_fine,
            thread_executor_discard=lambda: discarded.append(True),
        )
        assert outcome.results == [0]
        assert discarded, "a hung thread must poison the cached pool"
        assert outcome.failures[0].kind == "timeout"
        assert outcome.degraded_mode == "serial"


class TestWorkerClamp:
    def test_workers_beyond_batch_clamp_with_one_warning(self, caplog):
        x = batch(n=2)
        model = poisoned_network()
        # workers=8 on a 2-sample batch clamps to 2 single-sample
        # shards — the same bounds an explicit workers=2 run produces.
        reference = SpikingNetwork(model, timesteps=3, workers=2,
                                   shard_mode="thread").forward(x)
        net = SpikingNetwork(model, timesteps=3)
        with caplog.at_level(logging.WARNING, logger="repro.snn.engines.base"):
            logits = net.forward(x, workers=8, shard_mode="thread")
        clamp_warnings = [
            r for r in caplog.records if "clamping" in r.getMessage()
        ]
        assert len(clamp_warnings) == 1
        assert np.array_equal(logits, reference)
        # Merged stats must look like a normal run: no phantom shards.
        assert net.last_run_stats.shard_failures == []

    def test_single_sample_batch_runs_inline(self):
        x = batch(n=1)
        net = SpikingNetwork(poisoned_network(), timesteps=3)
        logits = net.forward(x, workers=4, shard_mode="thread")
        assert logits.shape == (1, 5)


class TestForklessAuto:
    def test_auto_degrades_to_thread_without_fork(self, monkeypatch):
        monkeypatch.setattr(sharding, "fork_available", lambda: False)
        assert sharding.resolve_shard_mode("auto") == "thread"
        with pytest.raises(RuntimeError):
            sharding.resolve_shard_mode("fork")

    def test_auto_run_on_forkless_platform(self, monkeypatch):
        monkeypatch.setattr(sharding, "fork_available", lambda: False)
        x = batch()
        model = poisoned_network()
        reference = SpikingNetwork(model, timesteps=3, workers=2,
                                   shard_mode="thread").forward(x)
        net = SpikingNetwork(model, timesteps=3, workers=2, shard_mode="auto")
        logits = net.forward(x)
        assert np.array_equal(logits, reference)
        assert net.last_run_stats.shard_failures == []
