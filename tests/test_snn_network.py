"""SpikingNetwork executor and spike-metrics tests."""

import numpy as np
import pytest

from repro import nn
from repro.snn import SpikingNetwork, collect_spike_stats, convert_to_snn, spiking_layers
from repro.tensor import Tensor, no_grad


def converted_toy(seed=0):
    model = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(seed)),
        nn.BatchNorm2d(4),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 5, rng=np.random.default_rng(seed + 1)),
    )
    rng = np.random.default_rng(seed + 2)
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 2, 4, 4)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


class TestSpikingNetwork:
    def test_requires_spiking_model(self):
        plain = nn.Sequential(nn.Conv2d(1, 1, 3), nn.ReLU())
        with pytest.raises(ValueError):
            SpikingNetwork(plain)

    def test_requires_positive_timesteps(self):
        with pytest.raises(ValueError):
            SpikingNetwork(converted_toy(), timesteps=0)

    def test_forward_shape(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(0).normal(size=(3, 2, 4, 4)).astype(np.float32)
        logits = net.forward(x)
        assert logits.shape == (3, 5)

    def test_forward_resets_state_between_calls(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(0).normal(size=(2, 2, 4, 4)).astype(np.float32)
        first = net.forward(x)
        second = net.forward(x)
        assert np.allclose(first, second)

    def test_per_step_is_cumulative(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(1).normal(size=(2, 2, 4, 4)).astype(np.float32)
        outs = net.forward_per_step(x, 6)
        assert len(outs) == 6
        total = net.forward(x, 6)
        assert np.allclose(outs[-1], total)

    def test_predict_and_accuracy(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(2).normal(size=(8, 2, 4, 4)).astype(np.float32)
        preds = net.predict(x)
        assert preds.shape == (8,)
        acc = net.accuracy(x, preds)
        assert acc == 1.0

    def test_accuracy_per_step_length(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(3).normal(size=(4, 2, 4, 4)).astype(np.float32)
        y = np.zeros(4, np.int64)
        curve = net.accuracy_per_step(x, y, timesteps=5)
        assert len(curve) == 5
        assert all(0.0 <= a <= 1.0 for a in curve)

    def test_batched_evaluation_matches_full(self):
        net = SpikingNetwork(converted_toy(), timesteps=3)
        x = np.random.default_rng(4).normal(size=(10, 2, 4, 4)).astype(np.float32)
        y = net.predict(x)
        acc_full = net.accuracy(x, y, batch_size=10)
        acc_batched = net.accuracy(x, y, batch_size=3)
        assert acc_full == acc_batched == 1.0


class TestSpikeStats:
    def test_rates_in_unit_interval(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(5).normal(size=(6, 2, 4, 4)).astype(np.float32)
        stats = collect_spike_stats(net, x)
        assert len(stats.per_layer) == 1
        assert 0.0 <= stats.per_layer[0] <= 1.0
        assert 0.0 <= stats.overall <= 1.0

    def test_stats_reset_between_collections(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(6).normal(size=(4, 2, 4, 4)).astype(np.float32)
        s1 = collect_spike_stats(net, x)
        s2 = collect_spike_stats(net, x)
        assert s1.per_layer == s2.per_layer

    def test_overall_weighted_by_neurons(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(7).normal(size=(4, 2, 4, 4)).astype(np.float32)
        stats = collect_spike_stats(net, x)
        layer = spiking_layers(net.model)[0]
        assert stats.overall == pytest.approx(layer.average_spike_rate)

    def test_layer_table_renders(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.random.default_rng(8).normal(size=(2, 2, 4, 4)).astype(np.float32)
        stats = collect_spike_stats(net, x)
        table = stats.layer_table()
        assert "overall" in table
        assert "layer" in table
