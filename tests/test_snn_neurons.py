"""IF/LIF neuron dynamics tests."""

import numpy as np
import pytest

from repro.snn import IFNeuron, LIFNeuron, ResetMode
from repro.tensor import Tensor


def drive(neuron, currents):
    """Feed a sequence of scalar currents; return list of outputs."""
    outs = []
    for c in currents:
        outs.append(float(neuron(Tensor(np.array([c], np.float32))).data[0]))
    return outs


class TestIFNeuron:
    def test_spikes_when_threshold_crossed(self):
        n = IFNeuron(threshold=1.0, v_init_fraction=0.0)
        outs = drive(n, [0.4, 0.4, 0.4])
        # Accumulates 0.4, 0.8, 1.2 -> spike on third step.
        assert outs == [0.0, 0.0, 1.0]

    def test_output_amplitude_is_threshold(self):
        n = IFNeuron(threshold=2.5, v_init_fraction=0.0)
        outs = drive(n, [3.0])
        assert outs == [2.5]

    def test_reset_by_subtraction_keeps_residual(self):
        n = IFNeuron(threshold=1.0, v_init_fraction=0.0)
        drive(n, [1.7])
        assert n.v[0] == pytest.approx(0.7)

    def test_reset_to_zero_discards_residual(self):
        n = IFNeuron(threshold=1.0, reset=ResetMode.ZERO, v_init_fraction=0.0)
        drive(n, [1.7])
        assert n.v[0] == pytest.approx(0.0)

    def test_v_init_fraction(self):
        n = IFNeuron(threshold=2.0, v_init_fraction=0.5)
        drive(n, [0.0])
        assert n.v[0] == pytest.approx(1.0)

    def test_rate_approximates_input_over_time(self):
        # Constant input z with reset-by-subtraction: rate -> z/threshold.
        n = IFNeuron(threshold=1.0, v_init_fraction=0.5)
        outs = drive(n, [0.3] * 1000)
        assert np.mean(outs) == pytest.approx(0.3, abs=0.01)

    def test_negative_input_accumulates(self):
        n = IFNeuron(threshold=1.0, v_init_fraction=0.0)
        outs = drive(n, [-0.5, 0.7, 0.9])
        assert outs[-1] == 1.0  # -0.5+0.7+0.9 = 1.1 >= 1.0
        assert outs[:2] == [0.0, 0.0]

    def test_reset_state(self):
        n = IFNeuron(threshold=1.0)
        drive(n, [0.4])
        n.reset_state()
        assert n.v is None

    def test_spike_statistics(self):
        n = IFNeuron(threshold=1.0, v_init_fraction=0.0)
        n(Tensor(np.array([2.0, 0.1, 3.0], np.float32)))
        assert n.spike_count == 2
        assert n.neuron_steps == 3
        assert n.average_spike_rate == pytest.approx(2 / 3)
        n.reset_stats()
        assert n.average_spike_rate == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            IFNeuron(threshold=0.0)

    def test_batch_shapes(self):
        n = IFNeuron(threshold=1.0)
        out = n(Tensor(np.zeros((4, 8, 2, 2), np.float32)))
        assert out.shape == (4, 8, 2, 2)


class TestLIFNeuron:
    def test_leak_reduces_accumulation(self):
        lif = LIFNeuron(threshold=10.0, leak=0.5, v_init_fraction=0.0)
        drive(lif, [1.0, 1.0, 1.0])
        # v = ((0*0.5+1)*0.5+1)*0.5+1 = 1.75
        assert lif.v[0] == pytest.approx(1.75)

    def test_if_equals_lif_with_unit_leak(self):
        i = IFNeuron(threshold=1.0, v_init_fraction=0.0)
        l = LIFNeuron(threshold=1.0, leak=1.0, v_init_fraction=0.0)
        seq = [0.3, 0.5, 0.9, -0.2, 0.6]
        assert drive(i, list(seq)) == drive(l, list(seq))

    def test_lif_spikes_less_than_if(self):
        rng = np.random.default_rng(0)
        currents = rng.uniform(0, 0.4, 500).tolist()
        i = IFNeuron(threshold=1.0)
        l = LIFNeuron(threshold=1.0, leak=0.9)
        drive(i, list(currents))
        drive(l, list(currents))
        assert l.spike_count <= i.spike_count

    def test_invalid_leak(self):
        with pytest.raises(ValueError):
            LIFNeuron(threshold=1.0, leak=0.0)
        with pytest.raises(ValueError):
            LIFNeuron(threshold=1.0, leak=1.5)

    def test_repr_mentions_leak(self):
        assert "leak" in repr(LIFNeuron(threshold=1.0))
