"""Mapper tests: geometry, pool folding, BN folding, residuals."""

import numpy as np
import pytest

from repro import nn
from repro.data import SyntheticCIFAR
from repro.hw.config import LayerKind, PYNQ_Z2
from repro.hw.mapper import (
    _expand_pool_into_conv,
    _expand_pool_into_fc,
    map_network,
)
from repro.pipeline import build_quantized_twin, transfer_weights
from repro.snn import convert_to_snn


@pytest.fixture(scope="module")
def converted_vgg():
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    convert_to_snn(model)
    return model


@pytest.fixture(scope="module")
def converted_resnet():
    model = build_quantized_twin("resnet18", width=0.125, num_classes=10, levels=2, seed=0)
    convert_to_snn(model)
    return model


class TestPoolExpansion:
    def test_conv_expansion_shape(self):
        w = np.arange(2 * 3 * 3 * 3).reshape(2, 3, 3, 3)
        out = _expand_pool_into_conv(w, 2)
        assert out.shape == (2, 3, 6, 6)
        # Each tap replicated over its 2x2 window.
        assert np.array_equal(out[0, 0, :2, :2], np.full((2, 2), w[0, 0, 0, 0]))

    def test_conv_expansion_is_exact(self):
        """conv(avgpool(x), w) == conv(x, expand(w), stride*2) / 4."""
        from repro.tensor import Tensor
        from repro.tensor.functional import avg_pool2d, conv2d

        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        pooled = avg_pool2d(Tensor(x), 2)
        ref = conv2d(pooled, Tensor(w), stride=1, padding=1).data
        expanded = _expand_pool_into_conv(w, 2).astype(np.float32)
        fused = conv2d(Tensor(x), Tensor(expanded), stride=2, padding=2).data / 4.0
        assert np.allclose(fused, ref, atol=1e-4)

    def test_fc_expansion_shape_and_order(self):
        w = np.arange(10 * 4).reshape(10, 4)
        out = _expand_pool_into_fc(w, channels=4, height=2, width=2)
        assert out.shape == (10, 16)
        # channel-major layout: each channel weight repeated 4x.
        assert np.array_equal(out[0, :4], np.full(4, w[0, 0]))


class TestVggMapping:
    def test_layer_count(self, converted_vgg):
        mapped = map_network(converted_vgg)
        assert len(mapped.layers) == 9  # 8 convs + classifier
        assert mapped.num_spiking_layers == 8

    def test_pool_folded_kernels(self, converted_vgg):
        mapped = map_network(converted_vgg)
        kernels = [l.config.kernel_size for l in mapped.layers[:-1]]
        strides = [l.config.stride for l in mapped.layers[:-1]]
        assert kernels == [3, 6, 6, 3, 6, 3, 6, 3]
        assert strides == [1, 2, 2, 1, 2, 1, 2, 1]

    def test_logical_kernel_recorded(self, converted_vgg):
        mapped = map_network(converted_vgg)
        assert all(l.config.logical_kernel == 3 for l in mapped.layers[:-1])

    def test_first_layer_is_frame_input(self, converted_vgg):
        mapped = map_network(converted_vgg)
        assert mapped.layers[0].frame_input
        assert not mapped.layers[1].frame_input

    def test_classifier_not_spiking(self, converted_vgg):
        mapped = map_network(converted_vgg)
        fc = mapped.layers[-1]
        assert not fc.spiking
        assert fc.config.kind is LayerKind.FC
        assert fc.output_scale > 0
        assert fc.config.logical_in_features == converted_vgg.fc.in_features

    def test_thresholds_constant_in_fixed_point(self, converted_vgg):
        mapped = map_network(converted_vgg)
        for layer in mapped.layers[:-1]:
            assert layer.config.threshold_int == 1 << PYNQ_Z2.membrane_frac_bits

    def test_weights_are_int8(self, converted_vgg):
        mapped = map_network(converted_vgg)
        for layer in mapped.layers:
            assert layer.weights_int.min() >= -128
            assert layer.weights_int.max() <= 127

    def test_bn_coefficients_present(self, converted_vgg):
        mapped = map_network(converted_vgg)
        for layer in mapped.layers[:-1]:
            assert layer.config.g_int is not None
            assert layer.config.g_int.shape == (layer.config.out_channels,)

    def test_max_pool_model_rejected(self):
        model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        # Rebuild with max pooling.
        from repro.models import vgg11

        maxed = vgg11(
            width=0.125,
            activation=lambda: nn.QuantReLU(levels=2),
            quantize=True,
            pool="max",
        )
        convert_to_snn(maxed)
        with pytest.raises(ValueError):
            map_network(maxed)

    def test_unconverted_model_rejected(self):
        model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        with pytest.raises(ValueError):
            map_network(model)

    def test_input_scale_from_calibration(self, converted_vgg):
        x = np.full((4, 3, 32, 32), 2.54, np.float32)
        mapped = map_network(converted_vgg, calibration_input=x)
        assert mapped.input_scale == pytest.approx(2.54 / 127.0)


class TestResnetMapping:
    def test_layer_count(self, converted_resnet):
        mapped = map_network(converted_resnet)
        assert len(mapped.layers) == 18  # stem + 16 block convs + fc

    def test_residual_wiring(self, converted_resnet):
        mapped = map_network(converted_resnet)
        conv2_layers = [l for l in mapped.layers if l.name.endswith(".conv2")]
        assert len(conv2_layers) == 8
        assert all(l.residual_input_index is not None for l in conv2_layers)
        # Stage-first blocks use projection, others identity.
        identities = [l for l in conv2_layers if l.residual_identity_int is not None]
        projections = [l for l in conv2_layers if l.residual_projection is not None]
        assert len(projections) == 3
        assert len(identities) == 5

    def test_projection_geometry(self, converted_resnet):
        mapped = map_network(converted_resnet)
        proj_layers = [
            l for l in mapped.layers if l.residual_projection is not None
        ]
        for layer in proj_layers:
            proj = layer.residual_projection
            assert proj.weights_int.shape[2:] == (1, 1)
            assert proj.stride == 2

    def test_global_pool_folded_into_fc(self, converted_resnet):
        mapped = map_network(converted_resnet)
        fc = mapped.layers[-1]
        # width 0.125 -> 64 channels at 4x4 -> 1024 expanded inputs.
        assert fc.config.in_channels == 64 * 16
        assert fc.config.logical_in_features == 64

    def test_describe_renders(self, converted_resnet):
        mapped = map_network(converted_resnet)
        text = mapped.describe()
        assert "resnet" in text
        assert "b1.conv1" in text

    def test_unsupported_topology(self):
        model = nn.Sequential(nn.Conv2d(1, 1, 3))
        with pytest.raises(TypeError):
            map_network(model)


class TestTiling:
    def test_full_width_needs_tiles(self):
        model = build_quantized_twin(
            "resnet18", width=1.0, num_classes=10, levels=2, seed=0
        )
        convert_to_snn(model)
        mapped = map_network(model)
        stem = mapped.layers[0]
        # 64ch x 32x32 = 65536 neurons -> 4 tiles of <=16384.
        assert stem.config.out_neurons == 65536
        assert stem.spatial_tiles == 4
        late = mapped.layers[-2]
        assert late.spatial_tiles == 1

    def test_weight_bytes_accounting(self):
        model = build_quantized_twin(
            "vgg11", width=0.25, num_classes=10, levels=2, seed=0
        )
        convert_to_snn(model)
        mapped = map_network(model)
        assert mapped.total_weight_bytes() > 0
