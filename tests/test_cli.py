"""CLI smoke tests (hardware artefacts only; training paths are covered
by the benchmarks)."""

import pytest

from repro.cli import ALL_ARTEFACTS, build_parser, main


class TestParser:
    def test_accepts_known_artefacts(self):
        parser = build_parser()
        args = parser.parse_args(["tab1", "tab3"])
        assert args.artefacts == ["tab1", "tab3"]

    def test_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["tab99"])

    def test_all_artefacts_have_runners(self):
        from repro.cli import _RUNNERS

        assert set(ALL_ARTEFACTS) == set(_RUNNERS)

    def test_defaults(self):
        args = build_parser().parse_args(["tab1"])
        assert args.timesteps == 8
        assert args.width == 0.125
        assert args.engine == "dense"
        assert args.workers == 1
        assert args.shard_mode == "auto"
        assert args.profile is False

    def test_batched_engine_and_workers(self):
        args = build_parser().parse_args(
            ["fig7", "--engine", "batched", "--workers", "2"]
        )
        assert args.engine == "batched"
        assert args.workers == 2

    def test_auto_engine_profile_and_shard_mode(self):
        args = build_parser().parse_args(
            ["fig9", "--engine", "auto", "--shard-mode", "thread", "--profile"]
        )
        assert args.engine == "auto"
        assert args.shard_mode == "thread"
        assert args.profile is True

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--engine", "warp"])

    def test_rejects_unknown_shard_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7", "--shard-mode", "quantum"])

    def test_unknown_engine_error_lists_valid_choices(self, capsys):
        """A bad --engine dies at the parser with every valid backend
        spelled out — not as a traceback from the engine factory."""
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fig7", "--engine", "warp"])
        assert excinfo.value.code == 2  # argparse usage error, no traceback
        err = capsys.readouterr().err
        assert "invalid choice" in err
        for name in ("dense", "event", "batched", "auto"):
            assert name in err

    def test_unknown_shard_mode_error_lists_valid_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fig7", "--shard-mode", "quantum"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for mode in ("auto", "fork", "thread"):
            assert mode in err

    def test_engine_choices_track_registry(self):
        """The CLI accepts exactly the engine registry, aliases included,
        so a new backend never needs a second hand-maintained list."""
        from repro.cli import ENGINE_CHOICES
        from repro.snn.engines import ENGINES

        assert set(ENGINE_CHOICES) == set(ENGINES)
        args = build_parser().parse_args(["fig7", "--engine", "adaptive"])
        assert args.engine == "adaptive"

    def test_shard_mode_choices_track_registry(self):
        from repro.snn.engines.sharding import SHARD_MODES

        parser = build_parser()
        for mode in SHARD_MODES:
            assert parser.parse_args(["fig7", "--shard-mode", mode]).shard_mode == mode

    def test_input_format_flag(self):
        args = build_parser().parse_args(["fig8", "--input-format", "events"])
        assert args.input_format == "events"
        assert build_parser().parse_args(["fig8"]).input_format == "frames"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--input-format", "holograms"])


class TestCampaignParser:
    def test_kind_and_out_required(self):
        from repro.cli import build_campaign_parser

        parser = build_campaign_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["faults"])  # missing --out
        with pytest.raises(SystemExit):
            parser.parse_args(["bogus", "--out", "x"])
        args = parser.parse_args(["faults", "--out", "runs/f"])
        assert args.kind == "faults"
        assert args.out == "runs/f"

    def test_defaults(self):
        from repro.cli import build_campaign_parser

        args = build_campaign_parser().parse_args(["dse", "--out", "x"])
        assert args.workers == 1
        assert args.mode == "serial"
        assert args.max_points is None
        assert args.retries == 1
        assert args.trials == 2
        assert 1e-3 in args.rates

    def test_list_flags_parse(self):
        from repro.cli import build_campaign_parser

        args = build_campaign_parser().parse_args(
            ["dse", "--out", "x", "--pe", "4,8", "--clock", "50,100",
             "--rates", "0.001,0.01", "--max-points", "2"]
        )
        assert args.pe == [4, 8]
        assert args.clock == [50.0, 100.0]
        assert args.rates == [0.001, 0.01]
        assert args.max_points == 2

    def test_rejects_empty_list(self):
        from repro.cli import build_campaign_parser

        with pytest.raises(SystemExit):
            build_campaign_parser().parse_args(["dse", "--out", "x", "--pe", ","])


class TestCampaignCommand:
    def test_dse_campaign_kill_and_resume(self, tmp_path, capsys):
        from repro.cli import EXIT_CAMPAIGN_INCOMPLETE

        out = str(tmp_path / "dse")
        argv = ["campaign", "dse", "--out", out,
                "--pe", "4,8", "--bn-lanes", "8", "--clock", "50,100"]
        # Simulated kill: stop after 2 of 4 points.
        assert main(argv + ["--max-points", "2"]) == EXIT_CAMPAIGN_INCOMPLETE
        assert "INCOMPLETE" in capsys.readouterr().out
        # Resume completes the remaining points and exits 0.
        assert main(argv) == 0
        text = capsys.readouterr().out
        assert "4/4 points complete" in text
        assert "8x8PE/8BN@100MHz" in text

    def test_campaign_dispatch_does_not_shadow_artefacts(self, capsys):
        # Regular artefact parsing still works after the dispatch hook.
        assert main(["tab3"]) == 0
        assert "Table III" in capsys.readouterr().out


class TestHardwareArtefacts:
    def test_tab1(self, capsys):
        assert main(["tab1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "FC (512)" in out

    def test_tab2(self, capsys):
        assert main(["tab2"]) == 0
        out = capsys.readouterr().out
        assert "11x11" in out

    def test_tab3(self, capsys):
        assert main(["tab3"]) == 0
        out = capsys.readouterr().out
        assert "BRAM" in out
        assert "95" in out

    def test_tab4(self, capsys):
        assert main(["tab4"]) == 0
        out = capsys.readouterr().out
        assert "This Work" in out
        assert "DSP-efficiency" in out

    def test_asic(self, capsys):
        assert main(["asic"]) == 0
        out = capsys.readouterr().out
        assert "192" in out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "8x8PE/16BN@100MHz" in out
        assert "Pareto" in out or "pareto" in out

    def test_multiple_and_dedup(self, capsys):
        assert main(["tab3", "tab3", "asic"]) == 0
        out = capsys.readouterr().out
        assert out.count("Table III") == 1

    def test_all_skip_training(self, capsys):
        assert main(["all", "--skip-training"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "Fig. 7" not in out
