"""Property tests for the shared neuron dynamics (sw and hw paths)."""

import numpy as np
import pytest

from repro.hw.aggregation import ActivationUnit
from repro.hw.fixed import saturate
from repro.snn import IFNeuron, LIFNeuron
from repro.snn.dynamics import (
    ResetMode,
    initial_membrane,
    multiplicative_leak,
    neuron_step,
    shift_leak,
)
from repro.tensor import Tensor


class TestNeuronStep:
    def test_reset_by_subtraction_keeps_residual(self):
        v = np.zeros(1, np.float32)
        v, spiked = neuron_step(v, np.float32(1.7), 1.0)
        assert spiked.all()
        assert v[0] == pytest.approx(0.7)

    def test_reset_to_zero_discards_residual(self):
        v = np.zeros(1, np.float32)
        v, spiked = neuron_step(v, np.float32(1.7), 1.0, reset=ResetMode.ZERO)
        assert spiked.all()
        assert v[0] == 0.0

    def test_no_spike_below_threshold(self):
        v = np.zeros(3, np.float32)
        v, spiked = neuron_step(v, np.float32(0.4), 1.0)
        assert not spiked.any()
        assert np.allclose(v, 0.4)

    def test_integer_dtype_preserved(self):
        v = np.zeros(4, np.int64)
        v, spiked = neuron_step(v, np.int64(7), 5)
        assert v.dtype == np.int64
        assert spiked.all()
        assert (v == 2).all()

    def test_multiplicative_leak_applied_before_integration(self):
        leak = multiplicative_leak(0.5)
        v = np.full(1, 2.0, np.float32)
        v, _ = neuron_step(v, np.float32(1.0), 10.0, leak_fn=leak)
        assert v[0] == pytest.approx(2.0 * 0.5 + 1.0)

    def test_shift_leak_matches_subtract_shift(self):
        leak = shift_leak(4)
        v = np.array([1600], np.int64)
        v, _ = neuron_step(v, np.int64(0), 10_000, leak_fn=leak)
        assert v[0] == 1600 - (1600 >> 4)

    def test_shift_leak_zero_is_full_decay(self):
        # The mapper emits shift 0 for very leaky LIF neurons
        # (leak < ~0.29); it must zero the membrane, not raise.
        leak = shift_leak(0)
        v = np.array([1600, -300], np.int64)
        v, _ = neuron_step(v, np.int64(5), 10_000, leak_fn=leak)
        assert (v == 5).all()
        with pytest.raises(ValueError):
            shift_leak(-1)

    def test_clamp_applied_after_integration(self):
        clamp = lambda value: np.clip(value, -8, 8)
        v = np.zeros(1, np.int64)
        v, spiked = neuron_step(v, np.int64(100), 9, clamp_fn=clamp)
        assert not spiked.any()  # clamped to 8 < 9
        assert v[0] == 8

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            neuron_step(np.zeros(1, np.float32), np.float32(0.0), 0.0)

    def test_rate_approximates_input_over_time(self):
        # Constant drive z with reset-by-subtraction: rate -> z/threshold.
        v = initial_membrane((1,), 1.0, 0.5)
        fired = 0
        for _ in range(1000):
            v, spiked = neuron_step(v, np.float32(0.3), 1.0)
            fired += int(spiked.sum())
        assert fired / 1000 == pytest.approx(0.3, abs=0.01)


class TestInitialMembrane:
    def test_float_seeding(self):
        v = initial_membrane((2, 2), 2.0, v_init_fraction=0.5)
        assert v.dtype == np.float32
        assert (v == 1.0).all()

    def test_integer_seeding_rounds(self):
        v = initial_membrane((3,), 5, v_init_fraction=0.5, dtype=np.int64)
        assert v.dtype == np.int64
        assert (v == 2).all()  # round(2.5) banker's-rounds to 2

    def test_zero_fraction(self):
        assert (initial_membrane((4,), 3.0, 0.0) == 0.0).all()


class TestSharedBySoftwareNeurons:
    """The Module-level neurons are thin wrappers over neuron_step."""

    def test_if_neuron_matches_raw_step(self):
        neuron = IFNeuron(threshold=1.3, v_init_fraction=0.5)
        rng = np.random.default_rng(0)
        v = initial_membrane((16,), 1.3, 0.5)
        for _ in range(20):
            x = rng.normal(0.3, 0.4, size=16).astype(np.float32)
            out = neuron(Tensor(x)).data
            v, spiked = neuron_step(v, x, 1.3)
            assert np.array_equal(out, spiked.astype(np.float32) * 1.3)
            assert np.array_equal(neuron.v, v)

    def test_lif_neuron_matches_raw_step(self):
        neuron = LIFNeuron(threshold=1.0, leak=0.75, v_init_fraction=0.0)
        leak = multiplicative_leak(0.75)
        rng = np.random.default_rng(1)
        v = initial_membrane((8,), 1.0, 0.0)
        for _ in range(20):
            x = rng.uniform(0, 0.6, size=8).astype(np.float32)
            out = neuron(Tensor(x)).data
            v, spiked = neuron_step(v, x, 1.0, leak_fn=leak)
            assert np.array_equal(out, spiked.astype(np.float32))
            assert np.array_equal(neuron.v, v)


class TestSharedByHardwareActivation:
    """The integer activation unit runs the same neuron_step."""

    def test_if_step_matches_raw_dynamics(self):
        unit = ActivationUnit()
        rng = np.random.default_rng(2)
        membrane = unit.initial_membrane((32,), threshold_int=4096)
        current = rng.integers(-3000, 6000, size=32).astype(np.int64)
        result = unit.step(current, membrane, threshold_int=4096)
        v, spiked = neuron_step(
            membrane,
            current,
            4096,
            clamp_fn=lambda value: saturate(value, unit.arch.psum_bits),
        )
        assert np.array_equal(result.spikes, spiked.astype(np.uint8))
        assert np.array_equal(result.membrane, v)

    def test_lif_step_matches_raw_dynamics(self):
        unit = ActivationUnit()
        rng = np.random.default_rng(3)
        membrane = rng.integers(0, 5000, size=32).astype(np.int64)
        current = rng.integers(-2000, 5000, size=32).astype(np.int64)
        result = unit.step(
            current, membrane, threshold_int=4096, lif_mode=True, leak_shift=4
        )
        v, spiked = neuron_step(
            membrane,
            current,
            4096,
            leak_fn=shift_leak(4),
            clamp_fn=lambda value: saturate(value, unit.arch.psum_bits),
        )
        assert np.array_equal(result.spikes, spiked.astype(np.uint8))
        assert np.array_equal(result.membrane, v)

    def test_initial_membrane_shared(self):
        unit = ActivationUnit()
        ours = unit.initial_membrane((4, 4), threshold_int=1000, v_init_fraction=0.5)
        shared = initial_membrane((4, 4), 1000, 0.5, dtype=np.int64)
        assert np.array_equal(ours, shared)
        assert ours.dtype == np.int64
