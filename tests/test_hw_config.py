"""ArchConfig / LayerConfig invariant tests."""

import numpy as np
import pytest

from repro.hw.config import ArchConfig, LayerConfig, LayerKind, PYNQ_Z2


class TestArchConfig:
    def test_paper_constants(self):
        assert PYNQ_Z2.num_pes == 64
        assert PYNQ_Z2.muxes_per_pe == 3
        assert PYNQ_Z2.adder_bits == 8
        assert PYNQ_Z2.psum_bits == 16
        assert PYNQ_Z2.clock_hz == 100e6

    def test_memory_map_sizes(self):
        # Paper §III-D.
        assert PYNQ_Z2.spike_in_bytes == 128
        assert PYNQ_Z2.residual_bytes == 128 * 1024
        assert PYNQ_Z2.membrane_bytes == 64 * 1024
        assert PYNQ_Z2.weight_bytes == 8 * 1024
        assert PYNQ_Z2.output_bytes == 56 * 1024

    def test_ops_accounting(self):
        # 3 mux-selects + 3 adds = 6 ops per PE per cycle.
        assert PYNQ_Z2.ops_per_pe_per_cycle == 6
        assert PYNQ_Z2.peak_gops == pytest.approx(38.4)

    def test_membrane_halves(self):
        assert PYNQ_Z2.membrane_half_bytes == 32 * 1024
        assert PYNQ_Z2.max_tile_neurons == 16384

    @pytest.mark.parametrize("k,cycles", [(1, 2), (3, 4), (5, 11), (7, 22), (9, 28), (11, 45)])
    def test_kernel_cycles(self, k, cycles):
        assert PYNQ_Z2.kernel_cycles(k) == cycles

    def test_kernel_cycles_invalid(self):
        with pytest.raises(ValueError):
            PYNQ_Z2.kernel_cycles(0)

    def test_frozen(self):
        with pytest.raises(Exception):
            PYNQ_Z2.pe_rows = 16  # dataclass(frozen=True)

    def test_custom_geometry(self):
        arch = ArchConfig(pe_rows=16, pe_cols=4, clock_hz=200e6)
        assert arch.num_pes == 64
        assert arch.peak_gops == pytest.approx(76.8)


class TestLayerConfig:
    def make(self, **kw):
        defaults = dict(
            kind=LayerKind.CONV, in_channels=16, out_channels=32,
            in_height=16, in_width=16, kernel_size=3, stride=1, padding=1,
        )
        defaults.update(kw)
        return LayerConfig(**defaults)

    def test_conv_output_geometry(self):
        cfg = self.make()
        assert (cfg.out_height, cfg.out_width) == (16, 16)
        strided = self.make(stride=2)
        assert (strided.out_height, strided.out_width) == (8, 8)

    def test_no_padding_shrinks(self):
        cfg = self.make(padding=0)
        assert cfg.out_height == 14

    def test_out_neurons_and_macs(self):
        cfg = self.make()
        assert cfg.out_neurons == 32 * 16 * 16
        assert cfg.dense_macs == 16 * 16 * 32 * 16 * 9
        assert cfg.weight_count == 32 * 16 * 9

    def test_fc_geometry(self):
        fc = LayerConfig(
            kind=LayerKind.FC, in_channels=512, out_channels=10,
            in_height=1, in_width=1, kernel_size=1,
        )
        assert fc.out_neurons == 10
        assert fc.dense_macs == 5120
        assert fc.weight_count == 5120

    def test_avgpool_geometry(self):
        pool = LayerConfig(
            kind=LayerKind.AVGPOOL, in_channels=8, out_channels=8,
            in_height=8, in_width=8, kernel_size=2,
        )
        assert (pool.out_height, pool.out_width) == (4, 4)
        assert pool.weight_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(in_channels=0)
        with pytest.raises(ValueError):
            self.make(kernel_size=0)
        with pytest.raises(ValueError):
            self.make(threshold_int=0)

    def test_bn_fields_optional(self):
        cfg = self.make()
        assert cfg.g_int is None
        cfg2 = self.make(g_int=np.ones(32, np.int64), h_int=np.zeros(32, np.int64))
        assert cfg2.g_int.shape == (32,)

    def test_logical_fields_default_none(self):
        cfg = self.make()
        assert cfg.logical_kernel is None
        assert cfg.logical_in_features is None
