"""AXI transfer-cost model tests."""

import pytest

from repro.hw.axi import AxiModel, AxiTimings
from repro.hw.config import PYNQ_Z2


class TestAxiModel:
    def test_word_size(self):
        assert AxiModel().word_bytes == 4

    def test_words_round_up(self):
        axi = AxiModel()
        assert axi.words_for(1) == 1
        assert axi.words_for(4) == 1
        assert axi.words_for(5) == 2

    def test_burst_time_scales_linearly(self):
        axi = AxiModel()
        t1 = axi.burst_seconds(4 * 100)
        t2 = axi.burst_seconds(4 * 200)
        assert t2 == pytest.approx(2 * t1)

    def test_burst_uses_clock(self):
        timings = AxiTimings(burst_cycles_per_word=1.0)
        axi = AxiModel(PYNQ_Z2, timings)
        assert axi.burst_seconds(4) == pytest.approx(1.0 / PYNQ_Z2.clock_hz)

    def test_mmio_much_slower_than_burst(self):
        axi = AxiModel()
        nbytes = 4 * 1000
        assert axi.mmio_seconds(nbytes) > 100 * axi.burst_seconds(nbytes)

    def test_mmio_matches_fc_observation(self):
        # 512x10 INT8 weights = 1280 words -> ~58 ms at 45.25 us/word,
        # the Table I FC anomaly this model explains.
        axi = AxiModel(PYNQ_Z2, AxiTimings(mmio_seconds_per_word=45.253e-6))
        seconds = axi.mmio_seconds(512 * 10)
        assert 0.05 < seconds < 0.07

    def test_bytes_accounted(self):
        axi = AxiModel()
        axi.burst_seconds(100)
        axi.mmio_seconds(50)
        assert axi.bytes_transferred == 150

    def test_invoke_overhead(self):
        axi = AxiModel(PYNQ_Z2, AxiTimings(invoke_overhead_seconds=1e-3))
        assert axi.invoke_seconds() == 1e-3
