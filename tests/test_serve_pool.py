"""Process-parallel pool: bit-identity, failure recovery, shm lifecycle.

Covers the pool-specific serving guarantees the single-worker suite
cannot: replica responses are bit-identical to an in-process engine run
(shared-memory framing is lossless and fork inherits the same plans),
a replica's death or hang re-queues work onto survivors while the pool
keeps answering, slabs are recycled — not leaked — across replica
restarts, and drain destroys every ``/dev/shm`` segment.  Also pins the
queue-proportional 429 ``Retry-After`` estimate the pool's ``capacity``
feeds into.
"""

import asyncio
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro import nn
from repro.serve import (
    BatcherConfig,
    CircuitBreaker,
    DegradePolicy,
    EngineWorkerPool,
    MicroBatcher,
    ServiceEstimator,
    ServingMetrics,
    ShedError,
    build_demo_network,
    list_segments,
    pool_start_method,
)
from repro.snn.engines import make_engine
from repro.snn.engines.service import WorkerTimeout

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)

SHAPE = (2, 4, 4)
CLASSES = 5


def tiny_model(seed=0):
    model, _ = build_demo_network(input_shape=SHAPE, classes=CLASSES, seed=seed)
    return model


class FileStallLayer(nn.Module):
    """Pass-through that sleeps while a sentinel file exists.

    Both the switch *and the duration* live in the filesystem (the file
    holds the seconds), not process memory, so the parent can arm and
    re-tune stalls in replicas that forked long ago.
    """

    stall_file = ""

    def forward(self, x):
        path = type(self).stall_file
        if path and os.path.exists(path):
            try:
                with open(path) as handle:
                    seconds = float(handle.read().strip() or 0)
            except (OSError, ValueError):
                seconds = 0.0
            time.sleep(seconds)
        return x


@pytest.fixture
def stall(tmp_path):
    path = str(tmp_path / "stall")
    FileStallLayer.stall_file = path

    class Switch:
        def arm(self, seconds):
            with open(path, "w") as handle:
                handle.write(str(seconds))

        def disarm(self):
            if os.path.exists(path):
                os.remove(path)

    switch = Switch()
    yield switch
    switch.disarm()
    FileStallLayer.stall_file = ""


def make_pool(replicas=2, model=None, serve_timesteps=4, max_batch_size=4):
    engine = make_engine("dense").bind(model if model is not None else tiny_model())
    return EngineWorkerPool(
        engine,
        replicas=replicas,
        probe_shape=SHAPE,
        serve_timesteps=serve_timesteps,
        max_batch_size=max_batch_size,
        spawn_spec="dense",
    )


# ----------------------------------------------------------------------
# Correctness: the pool is invisible in the numbers
# ----------------------------------------------------------------------
class TestPoolBitIdentity:
    def test_pool_results_bit_identical_to_inprocess_run(self):
        model = tiny_model()
        pool = make_pool(replicas=2, model=model)
        try:
            control_engine = make_engine("dense").bind(tiny_model())
            rng = np.random.default_rng(11)
            x = rng.normal(size=(3,) + SHAPE).astype(np.float32)
            control = control_engine.run(x, 4, per_step=True)

            run = pool.submit(x, 4, per_step=True).result(timeout=60)
            assert run.logits.dtype == control.logits.dtype
            np.testing.assert_array_equal(run.logits, control.logits)
            assert len(run.per_step) == 4
            for step, expect in zip(run.per_step, control.per_step):
                np.testing.assert_array_equal(step, expect)
        finally:
            pool.shutdown()

    def test_submissions_fan_out_and_all_complete(self):
        pool = make_pool(replicas=2)
        try:
            rng = np.random.default_rng(3)
            batches = [
                rng.normal(size=(2,) + SHAPE).astype(np.float32) for _ in range(8)
            ]
            futures = [pool.submit(x, 4) for x in batches]
            runs = [f.result(timeout=60) for f in futures]
            assert pool.runs_completed == 8
            assert all(r.logits.shape == (2, CLASSES) for r in runs)
            snap = pool.snapshot()
            assert snap["start_method"] == pool_start_method()
            assert sum(r["completed"] for r in snap["per_replica"]) == 8
            assert all(r["depth"] == 0 for r in snap["per_replica"])
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# Failure recovery: death and hang
# ----------------------------------------------------------------------
class TestPoolFailureRecovery:
    def test_replica_death_requeues_and_request_still_answers(self, stall):
        pool = make_pool(replicas=2, model=nn.Sequential(FileStallLayer(), tiny_model()))
        try:
            # Long enough that the victim is still mid-run when killed,
            # even on a loaded box (the re-queued attempt re-reads the
            # stall file, so the total wait stays ~2x the stall).
            stall.arm(1.0)
            x = np.random.default_rng(5).normal(size=(2,) + SHAPE)
            future = pool.submit(x.astype(np.float32), 4)
            victim = next(r for r in pool._replicas if r.outstanding)
            os.kill(victim.process.pid, signal.SIGKILL)

            run = future.result(timeout=60)  # re-queued onto the survivor
            assert run.logits.shape == (2, CLASSES)
            deadline = time.monotonic() + 30
            while pool.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.restarts == 1
            # The rebuilt replica serves again.
            stall.disarm()
            ok = pool.submit(x.astype(np.float32), 4).result(timeout=60)
            assert ok.logits.shape == (2, CLASSES)
            assert all(r.alive() for r in pool._replicas)
        finally:
            pool.shutdown()

    def test_late_answer_from_superseded_attempt_is_dropped(self, stall):
        """A replica that answered just before dying must not have its
        late message taken for the re-queued attempt's answer — the
        slabs still belong to the survivor's in-flight run, so an early
        release would recycle segments under it."""
        pool = make_pool(replicas=2, model=nn.Sequential(FileStallLayer(), tiny_model()))
        try:
            stall.arm(2.0)
            x = np.ones((2,) + SHAPE, dtype=np.float32)
            future = pool.submit(x, 4)
            victim = next(r for r in pool._replicas if r.outstanding)
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while pool.restarts < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            with pool._lock:
                dispatch = next(iter(pool._dispatches.values()))
                assert dispatch.attempts == 2  # re-queued exactly once
                stale = {
                    "req": dispatch.rid,
                    "replica": victim.index,
                    "generation": dispatch.generation,
                    "attempt": 1,
                    "ok": True,
                    "stats": {},
                }
            pool._handle_response(stale)
            assert not future.done()  # the stale answer resolved nothing
            assert pool.ring.bytes_in_flight() > 0  # ...and freed no slab
            run = future.result(timeout=60)  # the live attempt answers
            assert run.logits.shape == (2, CLASSES)
            assert pool.ring.bytes_in_flight() == 0
        finally:
            stall.disarm()
            pool.shutdown()

    def test_hang_timeout_rebuilds_only_the_wedged_replica(self, stall):
        pool = make_pool(replicas=2, model=nn.Sequential(FileStallLayer(), tiny_model()))
        try:
            x = np.zeros((1,) + SHAPE, dtype=np.float32)

            async def scenario():
                stall.arm(30.0)
                with pytest.raises(WorkerTimeout):
                    await pool.run_async(x, 2, timeout=0.5)
                stall.disarm()
                return await pool.run_async(x, 2, timeout=30.0)

            run = asyncio.run(scenario())
            assert run.logits.shape == (1, CLASSES)
            assert pool.restarts == 1
            snap = pool.snapshot()
            assert sum(r["restarts"] for r in snap["per_replica"]) == 1
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# Shared-memory lifecycle through the pool (satellite: shm coverage)
# ----------------------------------------------------------------------
class TestPoolShmLifecycle:
    def test_slabs_recycle_across_replica_restart_without_leaking(self, stall):
        pool = make_pool(replicas=2, model=nn.Sequential(FileStallLayer(), tiny_model()))
        try:
            x = np.ones((2,) + SHAPE, dtype=np.float32)
            for _ in range(4):
                pool.submit(x, 4).result(timeout=60)
            segments_before = list_segments(pool.ring.prefix)
            assert segments_before  # the ring minted working slabs

            stall.arm(1.0)  # still mid-run when the SIGKILL lands
            future = pool.submit(x, 4)
            victim = next(r for r in pool._replicas if r.outstanding)
            os.kill(victim.process.pid, signal.SIGKILL)
            future.result(timeout=60)
            stall.disarm()

            for _ in range(4):
                pool.submit(x, 4).result(timeout=60)
            # Same segments, reused — a restart must not strand or mint.
            assert list_segments(pool.ring.prefix) == segments_before
            assert pool.ring.bytes_in_flight() == 0
        finally:
            pool.shutdown()

    def test_shutdown_unlinks_every_segment_and_closes_the_pool(self):
        pool = make_pool(replicas=2)
        prefix = pool.ring.prefix
        x = np.ones((2,) + SHAPE, dtype=np.float32)
        pool.submit(x, 4).result(timeout=60)
        assert list_segments(prefix)
        pool.shutdown()
        assert list_segments(prefix) == []
        pool.shutdown()  # idempotent
        with pytest.raises(RuntimeError):
            pool.submit(x, 4)

    def test_stale_generation_never_served(self):
        """A response frame carrying the wrong generation is rejected,
        not returned as data (simulates a straggler's late write)."""
        pool = make_pool(replicas=1)
        try:
            x = np.ones((1,) + SHAPE, dtype=np.float32)
            run = pool.submit(x, 2, per_step=True).result(timeout=60)
            assert len(run.per_step) == 2
            # Corrupt the next dispatch's view of generations: write a
            # frame with an old tag into the output slab path by asking
            # _collect_result to read under a mismatched expectation.
            from repro.serve.shm import StaleSlabError

            with pool._lock:
                slab = pool.ring.acquire(64)
            slab.write(np.zeros(4, dtype=np.float32), generation=1)
            with pytest.raises(StaleSlabError):
                slab.read(expected_generation=999)
            with pool._lock:
                pool.ring.release(slab)
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# Retry-After scales with load (satellite: no more constant 429 hint)
# ----------------------------------------------------------------------
class StubCapacityWorker:
    def __init__(self, capacity=1):
        self.capacity = capacity
        self.restarts = 0
        self.shard_failures = 0
        self.last_degraded_mode = ""

    async def run_async(self, x, timesteps, per_step=False, timeout=None):
        await asyncio.sleep(3600)  # never completes: queue stays full


def retry_after_when_full(depth, capacity):
    async def scenario():
        worker = StubCapacityWorker(capacity=capacity)
        batcher = MicroBatcher(
            worker,
            CircuitBreaker(failure_threshold=100, reset_timeout=0.2),
            ServingMetrics(),
            DegradePolicy(full_timesteps=4, p99_budget_ms=None,
                          cooldown_seconds=0.0),
            config=BatcherConfig(
                max_batch_size=8,
                max_queue_depth=depth,
                gather_window_seconds=0.05,
                hang_timeout_seconds=5.0,
                idle_tick_seconds=0.01,
            ),
            estimator=ServiceEstimator(initial_unit=1e-3, overhead=1e-2),
        )
        x = np.zeros((1, 2, 2, 2), dtype=np.float32)
        fillers = [
            asyncio.ensure_future(
                batcher.submit(x, timesteps=4, deadline_ms=3_600_000.0)
            )
            for _ in range(depth)
        ]
        await asyncio.sleep(0)  # let the fillers enqueue
        with pytest.raises(ShedError) as err:
            await batcher.submit(x, timesteps=4, deadline_ms=3_600_000.0)
        for task in fillers:
            task.cancel()
        await asyncio.gather(*fillers, return_exceptions=True)
        return err.value.retry_after

    return asyncio.run(scenario())


class TestRetryAfterScalesWithLoad:
    def test_deeper_queue_means_longer_retry_after(self):
        shallow = retry_after_when_full(depth=4, capacity=1)
        deep = retry_after_when_full(depth=16, capacity=1)
        assert shallow is not None and deep is not None
        assert deep > shallow

    def test_more_worker_capacity_means_shorter_retry_after(self):
        solo = retry_after_when_full(depth=16, capacity=1)
        pooled = retry_after_when_full(depth=16, capacity=4)
        assert pooled < solo
