"""Unit tests for the COO spike dataflow (repro.snn.spikes).

SpikeStream/StepSpikes round-trips, metadata accessors, batch slicing,
the data-layer producers (EventStream / encoders), the coordinate
window math the event engine's gathers run on, and the SpikeTrace the
hardware models consume.
"""

import numpy as np
import pytest

from repro.data import (
    SyntheticDVS,
    direct_encode,
    direct_encode_stream,
    rate_encode,
    rate_encode_stream,
)
from repro.snn.engines import conv_active_windows, pooled_coords
from repro.snn.spikes import SpikeStream, SpikeTrace, StepSpikes
from repro.tensor.functional import im2col


def _binary_stack(shape=(5, 3, 2, 6, 6), density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.random(shape) < density).astype(np.float32)


class TestSpikeStream:
    def test_from_dense_round_trip_binary(self):
        dense = _binary_stack()
        stream = SpikeStream.from_dense(dense)
        assert stream.values is None  # binary stacks stay amplitude-free
        assert stream.timesteps == 5
        assert stream.shape == (3, 2, 6, 6)
        assert stream.num_events == int(dense.sum())
        assert np.array_equal(stream.to_dense(), dense)

    def test_from_dense_round_trip_valued(self):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(3, 2, 4, 4)).astype(np.float32)
        dense[dense < 0.5] = 0.0
        stream = SpikeStream.from_dense(dense)
        assert stream.values is not None
        assert np.array_equal(stream.to_dense(), dense)

    def test_density_and_per_step_profile(self):
        dense = np.zeros((4, 1, 2, 2), dtype=np.float32)
        dense[0, 0, 0, 0] = 1.0
        dense[2, 0, 1, 1] = 1.0
        dense[2, 0, 0, 1] = 1.0
        stream = SpikeStream.from_dense(dense)
        assert stream.num_events == 3
        assert stream.density == pytest.approx(3 / 16)
        assert list(stream.events_per_step()) == [1, 0, 2, 0]
        assert stream.density_per_step()[2] == pytest.approx(0.5)

    def test_step_slices_are_exact(self):
        dense = _binary_stack(seed=2)
        stream = SpikeStream.from_dense(dense)
        for t in range(stream.timesteps):
            step = stream.step(t)
            assert isinstance(step, StepSpikes)
            assert np.array_equal(step.to_dense(), dense[t])
            assert step.num_events == int(dense[t].sum())
        with pytest.raises(IndexError):
            stream.step(stream.timesteps)

    def test_events_are_canonicalised_by_timestep(self):
        # Deliberately unsorted event order (the batched DVS producer
        # concatenates per-sample blocks).
        coords = np.array([[0, 0, 1, 1], [0, 0, 0, 0]])
        stream = SpikeStream(
            coords=coords, timestep=np.array([3, 0]), shape=(1, 1, 2, 2), timesteps=4
        )
        assert list(stream.timestep) == [0, 3]
        assert stream.step(0).num_events == 1
        assert stream.step(3).num_events == 1

    def test_batch_slice_matches_dense_slice(self):
        dense = _binary_stack(seed=3)
        stream = SpikeStream.from_dense(dense)
        sub = stream[1:3]
        assert sub.batch_size == 2
        assert np.array_equal(sub.to_dense(), dense[:, 1:3])
        assert len(stream) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeStream(
                coords=np.array([[0, 0, 9, 0]]),  # h out of range
                timestep=np.array([0]),
                shape=(1, 1, 2, 2),
                timesteps=2,
            )
        with pytest.raises(ValueError):
            SpikeStream(
                coords=np.array([[0, 0, 0, 0]]),
                timestep=np.array([5]),  # step out of range
                shape=(1, 1, 2, 2),
                timesteps=2,
            )
        with pytest.raises(ValueError):
            SpikeStream.from_dense(np.zeros((4,)))  # no batch axis
        with pytest.raises(TypeError):
            SpikeStream.from_dense(_binary_stack())[::2]  # strided slice
        with pytest.raises(ValueError):
            SpikeStream.from_dense(_binary_stack()).batch_slice(2, 2)

    def test_duplicate_events_rejected(self):
        # A duplicated (timestep, coordinate) would double-count in the
        # coordinate-derived op accounting while densifying to one cell.
        with pytest.raises(ValueError, match="duplicate"):
            SpikeStream(
                coords=np.array([[0, 0, 1, 1], [0, 0, 1, 1]]),
                timestep=np.array([2, 2]),
                shape=(1, 1, 2, 2),
                timesteps=3,
            )


class TestProducers:
    def test_event_stream_to_spike_stream(self):
        dvs = SyntheticDVS(num_train=2, num_test=1, height=8, width=8, timesteps=5)
        sample = dvs.train[0]
        stream = sample.to_spike_stream()
        assert stream.shape == (1, 2, 8, 8)
        assert stream.timesteps == 5
        assert stream.values is None
        assert np.array_equal(
            stream.to_dense()[:, 0], sample.as_spike_frames()
        )

    def test_dvs_batched_spike_stream_matches_split_arrays(self):
        dvs = SyntheticDVS(num_train=3, num_test=2, height=8, width=8, timesteps=4)
        stream, labels = dvs.spike_stream("test")
        events, expected_labels = dvs.split_arrays("test")
        assert np.array_equal(labels, expected_labels)
        # split_arrays is (N, T, 2, H, W); the stream is time-major.
        assert np.array_equal(
            stream.to_dense(np.uint8).transpose(1, 0, 2, 3, 4), events
        )

    def test_direct_encode_stream_round_trips(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        stream = direct_encode_stream(x, 3)
        assert np.array_equal(stream.to_dense(), direct_encode(x, 3))

    def test_rate_encode_stream_matches_rate_encode(self):
        rng = np.random.default_rng(5)
        x = np.abs(rng.normal(size=(2, 1, 4, 4))).astype(np.float32)
        stream = rate_encode_stream(x, 6, rng=np.random.default_rng(7))
        frames = rate_encode(x, 6, rng=np.random.default_rng(7))
        assert stream.values is None
        assert np.array_equal(stream.to_dense(np.uint8), frames)

    def test_encoders_validate_timesteps(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        with pytest.raises(ValueError):
            direct_encode_stream(x, 0)
        with pytest.raises(ValueError):
            rate_encode_stream(x, 0)


class TestConvActiveWindows:
    """The coordinate window math equals the im2col scans it replaces."""

    @pytest.mark.parametrize(
        "kernel,stride,padding", [(3, 1, 1), (3, 2, 1), (5, 2, 2), (2, 2, 0), (1, 1, 0)]
    )
    def test_matches_im2col_scan(self, kernel, stride, padding):
        rng = np.random.default_rng(kernel * 10 + stride)
        for density in (0.0, 0.03, 0.4):
            x = (rng.random((2, 3, 9, 11)) < density).astype(np.float32)
            coords = np.stack(np.nonzero(x), axis=1)
            cols, _, _ = im2col(x, kernel, stride, padding)
            rows, entries = conv_active_windows(
                coords, x.shape, kernel, stride, padding
            )
            assert np.array_equal(rows, np.flatnonzero(cols.any(axis=1)))
            assert entries == int(np.count_nonzero(cols))

    def test_empty_coords(self):
        rows, entries = conv_active_windows(
            np.zeros((0, 4), np.int64), (1, 2, 4, 4), 3, 1, 1
        )
        assert rows.size == 0 and entries == 0


class TestPooledCoords:
    def test_matches_dense_maxpool_scan(self):
        rng = np.random.default_rng(9)
        x = (rng.random((2, 3, 8, 8)) < 0.15).astype(np.float32)
        step = StepSpikes(coords=np.stack(np.nonzero(x), axis=1), shape=x.shape)
        pooled = x.reshape(2, 3, 4, 2, 4, 2).max(axis=(3, 5))
        coords = pooled_coords(step, kernel=2, stride=2, out_shape=pooled.shape)
        assert np.array_equal(coords, np.stack(np.nonzero(pooled), axis=1))

    def test_odd_size_drops_uncovered_tail(self):
        x = np.zeros((1, 1, 5, 5), dtype=np.float32)
        x[0, 0, 4, 4] = 1.0  # outside every 2x2/stride-2 window
        step = StepSpikes(coords=np.stack(np.nonzero(x), axis=1), shape=x.shape)
        coords = pooled_coords(step, kernel=2, stride=2, out_shape=(1, 1, 2, 2))
        assert coords.shape == (0, 4)

    def test_refuses_overlapping_or_valued_planes(self):
        step = StepSpikes(
            coords=np.array([[0, 0, 0, 0]]), shape=(1, 1, 4, 4)
        )
        assert pooled_coords(step, kernel=3, stride=2, out_shape=(1, 1, 1, 1)) is None
        valued = StepSpikes(
            coords=np.array([[0, 0, 0, 0]]),
            shape=(1, 1, 4, 4),
            values=np.array([-2.0]),
        )
        assert pooled_coords(valued, kernel=2, stride=2, out_shape=(1, 1, 2, 2)) is None


class TestSpikeTrace:
    def test_aggregates_and_iteration(self):
        trace = SpikeTrace(
            layers=("a", "b.shortcut", "c"),
            densities=(0.5, 0.2, 0.1),
            engine="event",
            synaptic_ops=20,
            dense_synaptic_ops=100,
            spike_rate=0.12,
        )
        assert len(trace) == 3
        assert list(trace) == [0.5, 0.2, 0.1]
        assert trace.rates(skip=lambda n: "shortcut" in n) == (0.5, 0.1)
        assert trace.synaptic_op_saving == pytest.approx(0.8)
        assert trace.total_synaptic_ops == 20
        assert trace.overall_spike_rate == pytest.approx(0.12)

    def test_layer_density_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpikeTrace(layers=("a",), densities=(0.5, 0.1))

    def test_shared_rate_resolver(self):
        """resolve_layer_rates is the single resolver behind both the
        latency (table1) and traffic consumers."""
        from repro.snn.stats import resolve_layer_rates

        trace = SpikeTrace(
            layers=("a", "b.shortcut", "c"), densities=(0.5, 0.2, 0.1)
        )
        assert resolve_layer_rates(trace, 3) == [0.5, 0.2, 0.1]
        assert resolve_layer_rates(trace, 2) == [0.5, 0.1]  # folds shortcuts
        assert resolve_layer_rates([0.3, 0.4], 2) == [0.3, 0.4]
        with pytest.raises(ValueError, match="same architecture"):
            resolve_layer_rates(trace, 5)
