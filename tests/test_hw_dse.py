"""Design-space exploration tests."""

import dataclasses

import pytest

from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.dse import DesignSpaceExplorer, SweepSpec, paper_design_point


class TestEvaluate:
    def test_paper_point_matches_tables(self):
        point = paper_design_point()
        assert point.gops == pytest.approx(38.4)
        assert point.dsps == 17
        assert point.brams == 95
        assert point.fits
        assert point.label == "8x8PE/16BN@100MHz"

    def test_infeasible_point_flagged(self):
        huge = dataclasses.replace(PYNQ_Z2, pe_rows=64, pe_cols=64)
        point = DesignSpaceExplorer().evaluate(huge)
        assert not point.fits
        assert any("LUT" in v for v in point.violations)

    def test_clock_limit(self):
        hot = dataclasses.replace(PYNQ_Z2, clock_hz=400e6)
        point = DesignSpaceExplorer().evaluate(hot)
        assert not point.fits
        assert any("clock" in v for v in point.violations)

    def test_power_scales_with_array(self):
        explorer = DesignSpaceExplorer()
        small = explorer.evaluate(dataclasses.replace(PYNQ_Z2, pe_rows=4, pe_cols=4))
        large = explorer.evaluate(dataclasses.replace(PYNQ_Z2, pe_rows=16, pe_cols=16))
        assert large.power_watts > small.power_watts
        assert large.gops > small.gops


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return DesignSpaceExplorer().sweep(SweepSpec())

    def test_candidate_count(self, points):
        # 3 square arrays x 3 lane counts x 4 clocks.
        assert len(points) == 36

    def test_rectangular_arrays_excluded_by_default(self, points):
        assert all(p.arch.pe_rows == p.arch.pe_cols for p in points)

    def test_rectangular_arrays_optional(self):
        spec = SweepSpec(pe_rows=(4, 8), pe_cols=(4, 8), bn_lanes=(16,),
                         clock_mhz=(100,), square_arrays_only=False)
        points = DesignSpaceExplorer().sweep(spec)
        assert len(points) == 4

    def test_feasible_only_filter(self):
        # Include candidates that cannot fit (32x32 PEs, 300 MHz clock).
        spec = SweepSpec(
            pe_rows=(8, 32), pe_cols=(8, 32), bn_lanes=(16,),
            clock_mhz=(100, 300),
        )
        explorer = DesignSpaceExplorer()
        everything = explorer.sweep(spec)
        feasible = explorer.sweep(spec, feasible_only=True)
        assert len(feasible) < len(everything)
        assert all(p.fits for p in feasible)

    def test_paper_point_in_sweep(self, points):
        labels = {p.label for p in points}
        assert "8x8PE/16BN@100MHz" in labels


class TestParetoFront:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer()

    @pytest.fixture(scope="class")
    def points(self, explorer):
        return explorer.sweep(SweepSpec())

    def test_front_is_nondominated(self, explorer, points):
        objectives = ("gops", "-luts", "-power_watts")
        front = explorer.pareto_front(points, objectives=objectives)
        assert front
        for p in front:
            for q in front:
                if p is q:
                    continue
                as_good = (
                    q.gops >= p.gops
                    and q.luts <= p.luts
                    and q.power_watts <= p.power_watts
                )
                strictly = (
                    q.gops > p.gops
                    or q.luts < p.luts
                    or q.power_watts < p.power_watts
                )
                assert not (as_good and strictly)

    def test_minimised_objectives_create_tradeoff(self, explorer, points):
        front = explorer.pareto_front(points)
        assert len(front) >= 3
        # The frontier spans small-cheap to big-fast designs.
        assert min(p.luts for p in front) < max(p.luts for p in front)
        assert min(p.gops for p in front) < max(p.gops for p in front)

    def test_front_members_feasible(self, explorer, points):
        assert all(p.fits for p in explorer.pareto_front(points))

    def test_best_by_objective(self, explorer, points):
        best_gops = explorer.best(points, "gops")
        best_eff = explorer.best(points, "gops_per_watt")
        assert best_gops.gops >= best_eff.gops

    def test_best_requires_feasible(self, explorer):
        huge = dataclasses.replace(PYNQ_Z2, pe_rows=64, pe_cols=64)
        point = explorer.evaluate(huge)
        with pytest.raises(ValueError):
            explorer.best([point])

    def test_paper_point_is_reasonable(self, explorer, points):
        """The shipped 8x8 design should be near (not wildly off) the front."""
        paper = paper_design_point()
        front = explorer.pareto_front(points, objectives=("gops", "gops_per_watt"))
        best_eff_at_paper_gops = max(
            (p.gops_per_watt for p in front if p.gops <= paper.gops * 2),
            default=0.0,
        )
        assert paper.gops_per_watt > 0.4 * best_eff_at_paper_gops
