"""Module base-class tests: registration, traversal, serialisation."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones(3, np.float32))
        self.child = nn.Linear(3, 2, rng=np.random.default_rng(0))
        self.register_buffer("counter", np.zeros(1, np.float32))

    def forward(self, x):
        return self.child(x * self.w)


class TestRegistration:
    def test_parameters_discovered(self):
        toy = Toy()
        names = [n for n, _ in toy.named_parameters()]
        assert "w" in names
        assert "child.weight" in names
        assert "child.bias" in names

    def test_modules_traversal(self):
        toy = Toy()
        mods = [m for _, m in toy.named_modules()]
        assert toy in mods
        assert toy.child in mods

    def test_buffers_discovered(self):
        toy = Toy()
        assert dict(toy.named_buffers())["counter"].shape == (1,)

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 3 + 3 * 2 + 2


class TestMode:
    def test_train_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert not toy.training
        assert not toy.child.training
        toy.train()
        assert toy.child.training

    def test_zero_grad(self):
        toy = Toy()
        out = toy(Tensor(np.ones((2, 3), np.float32)))
        out.sum().backward()
        assert toy.w.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        for p in a.parameters():
            p.data = p.data + 1.0
        a._set_buffer("counter", np.array([5.0], np.float32))
        b.load_state_dict(a.state_dict())
        for (n1, p1), (n2, p2) in zip(a.named_parameters(), b.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)
        assert b.counter[0] == 5.0

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"][:] = 99.0
        assert not np.allclose(toy.w.data, 99.0)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["w"] = np.zeros(5, np.float32)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)

    def test_unknown_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_set_unregistered_buffer_raises(self):
        toy = Toy()
        with pytest.raises(KeyError):
            toy._set_buffer("nope", np.zeros(1))


class TestSequential:
    def test_forward_order(self):
        seq = nn.Sequential(nn.ReLU(), nn.Flatten())
        out = seq(Tensor(np.array([[[-1.0, 2.0]]], np.float32)))
        assert np.allclose(out.data, [[0.0, 2.0]])

    def test_len_getitem_iter(self):
        seq = nn.Sequential(nn.ReLU(), nn.Identity())
        assert len(seq) == 2
        assert isinstance(seq[0], nn.ReLU)
        assert len(list(iter(seq))) == 2

    def test_append(self):
        seq = nn.Sequential(nn.ReLU())
        seq.append(nn.Identity())
        assert len(seq) == 2
        assert "1" in dict(seq.named_modules())

    def test_stable_state_dict_keys(self):
        seq = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)))
        assert "0.weight" in seq.state_dict()

    def test_repr_contains_children(self):
        seq = nn.Sequential(nn.ReLU())
        assert "ReLU" in repr(seq)
