"""Model-zoo tests: geometry, widths, registry, activations."""

import numpy as np
import pytest

from repro import nn
from repro.models import build_model, list_models, resnet18, vgg11
from repro.models.resnet import BasicBlock
from repro.tensor import Tensor, no_grad


class TestResNet18:
    def test_output_shape(self):
        model = resnet18(width=0.125)
        with no_grad():
            out = model(Tensor(np.zeros((2, 3, 32, 32), np.float32)))
        assert out.shape == (2, 10)

    def test_has_17_convs_plus_fc(self):
        model = resnet18(width=0.125)
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        convs_3x3 = [c for c in convs if c.kernel_size == 3]
        projections = [c for c in convs if c.kernel_size == 1]
        assert len(convs_3x3) == 17  # stem + 16 block convs
        assert len(projections) == 3  # stage 2,3,4 downsamples
        assert isinstance(model.fc, nn.Linear)

    def test_full_width_channel_plan(self):
        model = resnet18(width=1.0)
        assert model.conv1.out_channels == 64
        assert model.layer4[0].conv1.out_channels == 512
        assert model.fc.in_features == 512

    def test_full_width_param_count_near_11m(self):
        model = resnet18(width=1.0)
        assert 10.5e6 < model.num_parameters() < 11.5e6

    def test_width_scales_channels(self):
        model = resnet18(width=0.25)
        assert model.conv1.out_channels == 16

    def test_custom_activation_factory(self):
        model = resnet18(width=0.125, activation=lambda: nn.QuantReLU(levels=2))
        quants = [m for m in model.modules() if isinstance(m, nn.QuantReLU)]
        assert len(quants) == 17

    def test_quantize_flag_uses_quant_layers(self):
        model = resnet18(width=0.125, quantize=True)
        assert isinstance(model.conv1, nn.QuantConv2d)
        assert isinstance(model.fc, nn.QuantLinear)

    def test_blocks_have_shortcuts(self):
        model = resnet18(width=0.125)
        first_stage2 = model.layer2[0]
        assert isinstance(first_stage2, BasicBlock)
        assert not isinstance(first_stage2.shortcut, nn.Identity)
        assert isinstance(model.layer1[0].shortcut, nn.Identity)

    def test_deterministic_by_seed(self):
        a = resnet18(width=0.125, seed=3)
        b = resnet18(width=0.125, seed=3)
        assert np.allclose(a.conv1.weight.data, b.conv1.weight.data)


class TestVGG11:
    def test_output_shape(self):
        model = vgg11(width=0.125)
        with no_grad():
            out = model(Tensor(np.zeros((2, 3, 32, 32), np.float32)))
        assert out.shape == (2, 10)

    def test_has_8_convs(self):
        model = vgg11(width=0.25)
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert len(convs) == 8

    def test_default_pool_is_avg(self):
        model = vgg11(width=0.125)
        pools = [m for m in model.modules() if isinstance(m, nn.AvgPool2d)]
        assert len(pools) == 5

    def test_max_pool_option(self):
        model = vgg11(width=0.125, pool="max")
        pools = [m for m in model.modules() if isinstance(m, nn.MaxPool2d)]
        assert len(pools) == 5

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            vgg11(pool="median")

    def test_full_width_channels(self):
        model = vgg11(width=1.0)
        convs = [m for m in model.modules() if isinstance(m, nn.Conv2d)]
        assert [c.out_channels for c in convs] == [64, 128, 256, 256, 512, 512, 512, 512]


class TestRegistry:
    def test_lists_models(self):
        assert {"resnet18", "vgg11"} <= set(list_models())

    def test_build_by_name(self):
        model = build_model("vgg11", width=0.125)
        with no_grad():
            assert model(Tensor(np.zeros((1, 3, 32, 32), np.float32))).shape == (1, 10)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_duplicate_registration_rejected(self):
        from repro.models.registry import register_model

        with pytest.raises(ValueError):
            register_model("resnet18")(lambda: None)
