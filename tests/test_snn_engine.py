"""Simulation-engine tests: dense vs event vs batched equivalence and statistics."""

import numpy as np
import pytest

from repro import nn
from repro.snn import (
    DenseEngine,
    SparseEventEngine,
    SpikingNetwork,
    TimeBatchedEngine,
    convert_to_snn,
    make_engine,
)
from repro.snn.engine import sparse_conv2d, sparse_linear
from repro.tensor import Tensor, no_grad


def converted_toy(seed=0, neuron="if"):
    model = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(seed)),
        nn.BatchNorm2d(4),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 5, rng=np.random.default_rng(seed + 1)),
    )
    rng = np.random.default_rng(seed + 2)
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 2, 4, 4)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model, neuron=neuron)


def converted_pooled_toy(seed=0):
    """Conv/BN/pool chain — exercises the batched engine's stateless
    interceptors (BatchNorm + MaxPool) on both sides of a neuron layer."""
    model = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(seed)),
        nn.BatchNorm2d(4),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.MaxPool2d(2),
        nn.Conv2d(4, 4, 3, padding=1, rng=np.random.default_rng(seed + 1)),
        nn.QuantReLU(levels=2, init_step=2.0),
        nn.AvgPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 2 * 2, 5, rng=np.random.default_rng(seed + 2)),
    )
    rng = np.random.default_rng(seed + 3)
    model.train()
    with no_grad():
        for _ in range(4):
            model(Tensor(rng.normal(size=(8, 2, 8, 8)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


def converted_resnet(seed=0):
    """A width-scaled quantised ResNet (residual graph, QuantConv2d)."""
    from repro.pipeline import build_quantized_twin

    model = build_quantized_twin(
        "resnet18", width=0.125, num_classes=10, levels=2, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    model.train()
    with no_grad():
        for _ in range(2):
            model(Tensor(rng.normal(size=(4, 3, 32, 32)).astype(np.float32)))
    model.eval()
    return convert_to_snn(model)


class TestMakeEngine:
    def test_names(self):
        assert isinstance(make_engine("dense"), DenseEngine)
        assert isinstance(make_engine("event"), SparseEventEngine)
        assert isinstance(make_engine("sparse"), SparseEventEngine)
        assert isinstance(make_engine("batched"), TimeBatchedEngine)
        assert isinstance(make_engine("time-batched"), TimeBatchedEngine)

    def test_instance_passthrough(self):
        engine = SparseEventEngine()
        assert make_engine(engine) is engine

    def test_bound_engine_cannot_be_shared_across_models(self):
        engine = SparseEventEngine()
        SpikingNetwork(converted_toy(0), timesteps=2, engine=engine)
        with pytest.raises(ValueError):
            SpikingNetwork(converted_toy(1), timesteps=2, engine=engine)

    def test_rebinding_same_model_is_fine(self):
        model = converted_toy()
        engine = SparseEventEngine()
        SpikingNetwork(model, timesteps=2, engine=engine)
        SpikingNetwork(model, timesteps=3, engine=engine)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_engine("warp-drive")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            make_engine(42)

    def test_run_requires_bind(self):
        with pytest.raises(RuntimeError):
            DenseEngine().run(np.zeros((1, 2, 4, 4), np.float32), 2)

    def test_invalid_density_threshold(self):
        with pytest.raises(ValueError):
            SparseEventEngine(density_threshold=0.0)


class TestEquivalenceToy:
    def test_logits_and_predictions_match(self):
        x = np.random.default_rng(0).normal(size=(6, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=6, engine="dense")
        event = SpikingNetwork(converted_toy(), timesteps=6, engine="event")
        ld = dense.forward(x)
        le = event.forward(x)
        assert np.allclose(ld, le, atol=1e-4)
        assert np.array_equal(ld.argmax(1), le.argmax(1))

    def test_per_step_match(self):
        x = np.random.default_rng(1).normal(size=(4, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=4, engine="dense")
        event = SpikingNetwork(converted_toy(), timesteps=4, engine="event")
        for a, b in zip(dense.forward_per_step(x, 5), event.forward_per_step(x, 5)):
            assert np.allclose(a, b, atol=1e-4)

    def test_event_engine_is_repeatable(self):
        x = np.random.default_rng(2).normal(size=(3, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="event")
        assert np.array_equal(net.forward(x), net.forward(x))


class TestEquivalenceBatched:
    """The time-batched engine reproduces dense logits: same kernels,
    same per-sample summation order, restructured loop.  The only
    admissible difference is BLAS blocking on the T-fold-larger GEMMs
    (ulp-level), so logits agree tightly and predictions exactly."""

    def _assert_identical(self, a, b, atol=1e-5):
        assert np.allclose(a, b, atol=atol)
        assert np.array_equal(a.argmax(1), b.argmax(1))

    def test_if_logits_identical(self):
        x = np.random.default_rng(20).normal(size=(6, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=6, engine="dense")
        batched = SpikingNetwork(converted_toy(), timesteps=6, engine="batched")
        self._assert_identical(dense.forward(x), batched.forward(x))

    def test_lif_logits_identical(self):
        x = np.random.default_rng(21).normal(size=(5, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(neuron="lif"), timesteps=5, engine="dense")
        batched = SpikingNetwork(
            converted_toy(neuron="lif"), timesteps=5, engine="batched"
        )
        self._assert_identical(dense.forward(x), batched.forward(x))

    def test_pooled_chain_identical(self):
        x = np.random.default_rng(22).normal(size=(4, 2, 8, 8)).astype(np.float32)
        dense = SpikingNetwork(converted_pooled_toy(), timesteps=4, engine="dense")
        batched = SpikingNetwork(converted_pooled_toy(), timesteps=4, engine="batched")
        self._assert_identical(dense.forward(x), batched.forward(x))

    def test_per_step_logits_identical(self):
        x = np.random.default_rng(23).normal(size=(4, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=4, engine="dense")
        batched = SpikingNetwork(converted_toy(), timesteps=4, engine="batched")
        steps_d = dense.forward_per_step(x, 5)
        steps_b = batched.forward_per_step(x, 5)
        assert len(steps_b) == 5
        for a, b in zip(steps_d, steps_b):
            self._assert_identical(a, b)

    def test_resnet_residual_graph_identical(self):
        model = converted_resnet()
        x = np.random.default_rng(24).normal(size=(4, 3, 32, 32)).astype(np.float32)
        dense = SpikingNetwork(model, timesteps=4, engine="dense")
        ld = dense.forward(x)
        dense_stats = dense.last_run_stats
        batched = SpikingNetwork(model, timesteps=4, engine="batched")
        lb = batched.forward(x)
        self._assert_identical(ld, lb, atol=1e-4)
        # Batched bills the same full dense MAC count and sees the same
        # spikes — the wall-clock win changes no accounting.
        stats = batched.last_run_stats
        assert stats.total_synaptic_ops == dense_stats.total_synaptic_ops
        assert stats.spike_rates() == pytest.approx(
            dense_stats.spike_rates(), abs=1e-3
        )

    def test_stats_and_cleanup(self):
        x = np.random.default_rng(25).normal(size=(3, 2, 8, 8)).astype(np.float32)
        net = SpikingNetwork(converted_pooled_toy(), timesteps=3, engine="batched")
        net.forward(x)
        stats = net.last_run_stats
        assert stats.engine == "batched"
        assert stats.batch_size == 3
        assert [l.kind for l in stats.layers] == [
            "conv", "neuron", "conv", "neuron", "linear",
        ]
        # All interceptors (synapse, neuron and stateless) uninstalled.
        for _, module in net.model.named_modules():
            assert "forward" not in module.__dict__


class TestWorkerSharding:
    """workers=K forks the batch into shards; results and merged stats
    must match the single-worker run exactly."""

    def test_logits_match_single_worker(self):
        model = converted_toy()
        x = np.random.default_rng(30).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=4, engine="batched")
        single = net.forward(x, workers=1)
        sharded = net.forward(x, workers=2)
        # Shards are smaller GEMMs; BLAS blocking may differ by ulps.
        assert np.allclose(single, sharded, atol=1e-5)
        assert np.array_equal(single.argmax(1), sharded.argmax(1))

    def test_merged_stats_match_single_worker(self):
        model = converted_toy()
        x = np.random.default_rng(31).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=4, engine="dense")
        net.forward(x, workers=1)
        one = net.last_run_stats
        net.forward(x, workers=2)
        two = net.last_run_stats
        assert two.workers == 2
        assert two.batch_size == one.batch_size
        assert two.total_synaptic_ops == one.total_synaptic_ops
        assert two.spike_rates() == one.spike_rates()
        for a, b in zip(one.layers, two.layers):
            assert a.name == b.name
            assert a.spike_count == b.spike_count
            assert a.synaptic_ops == b.synaptic_ops

    def test_per_step_sharded(self):
        model = converted_toy()
        x = np.random.default_rng(32).normal(size=(5, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=3, engine="batched")
        single = net.forward_per_step(x, workers=1)
        sharded = net.forward_per_step(x, workers=3)
        for a, b in zip(single, sharded):
            assert np.allclose(a, b, atol=1e-5)

    def test_workers_capped_at_batch_size(self):
        net = SpikingNetwork(converted_toy(), timesteps=2, engine="dense")
        x = np.random.default_rng(33).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=8)  # only 2 samples -> 2 shards
        assert net.last_run_stats.workers == 2
        assert net.last_run_stats.batch_size == 2

    def test_invalid_workers_rejected(self):
        net = SpikingNetwork(converted_toy(), timesteps=2)
        x = np.zeros((1, 2, 4, 4), np.float32)
        with pytest.raises(ValueError):
            net.forward(x, workers=0)
        with pytest.raises(ValueError):
            SpikingNetwork(converted_toy(), timesteps=2, workers=0)

    def test_network_default_workers(self):
        net = SpikingNetwork(converted_toy(), timesteps=2, workers=2)
        x = np.random.default_rng(34).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert net.last_run_stats.workers == 2


class TestThreadSharding:
    """shard_mode="thread" routes shards through a pool of sibling
    engines bound to weight-sharing model clones; results and merged
    statistics must match the single-worker (and fork) runs exactly."""

    @pytest.mark.parametrize("engine", ["dense", "event", "batched"])
    def test_logits_match_single_worker(self, engine):
        model = converted_toy()
        x = np.random.default_rng(40).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        single = net.forward(x, workers=1)
        threaded = net.forward(x, workers=2, shard_mode="thread")
        assert np.allclose(single, threaded, atol=1e-5)
        assert np.array_equal(single.argmax(1), threaded.argmax(1))
        assert net.last_run_stats.shard_mode == "thread"
        assert net.last_run_stats.workers == 2

    def test_merged_stats_match_single_worker(self):
        model = converted_toy()
        x = np.random.default_rng(41).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=4, engine="batched")
        net.forward(x, workers=1)
        one = net.last_run_stats
        net.forward(x, workers=2, shard_mode="thread")
        two = net.last_run_stats
        assert two.batch_size == one.batch_size
        assert two.total_synaptic_ops == one.total_synaptic_ops
        assert two.spike_rates() == one.spike_rates()
        for a, b in zip(one.layers, two.layers):
            assert a.name == b.name
            assert a.spike_count == b.spike_count
            assert a.synaptic_ops == b.synaptic_ops

    def test_thread_sharding_is_deterministic(self):
        model = converted_toy()
        x = np.random.default_rng(42).normal(size=(5, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=3, engine="batched")
        first = net.forward(x, workers=2, shard_mode="thread")
        second = net.forward(x, workers=2, shard_mode="thread")
        assert np.array_equal(first, second)

    def test_per_step_threaded(self):
        model = converted_toy()
        x = np.random.default_rng(43).normal(size=(5, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(model, timesteps=3, engine="batched")
        single = net.forward_per_step(x, workers=1)
        threaded = net.forward_per_step(x, workers=3, shard_mode="thread")
        for a, b in zip(single, threaded):
            assert np.allclose(a, b, atol=1e-5)

    def test_parent_model_untouched(self):
        """Thread shards run on clones: the bound model keeps no
        interceptors and the engine stays usable in-process after."""
        model = converted_toy()
        net = SpikingNetwork(model, timesteps=3, engine="event")
        x = np.random.default_rng(44).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=2, shard_mode="thread")
        for _, module in model.named_modules():
            assert "forward" not in module.__dict__
        net.forward(x, workers=1)  # still runs in-process

    def test_thread_peers_and_pool_reused_across_runs(self):
        """Sibling engines, model clones and the worker pool persist
        between runs, so per-module caches (effective weights, pad
        workspaces) keep hitting instead of refilling every forward."""
        net = SpikingNetwork(converted_toy(), timesteps=3, engine="batched")
        x = np.random.default_rng(45).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=2, shard_mode="thread")
        engine = net.engine
        peers = engine._thread_peers[2]
        pool = engine._thread_pool
        net.forward(x, workers=2, shard_mode="thread")
        assert engine._thread_peers[2] is peers
        assert engine._thread_pool is pool
        # Peers share the parent's thread-safe weight cache.
        for peer in peers:
            assert peer._weight_cache is engine._weight_cache

    def test_invalid_shard_mode_rejected(self):
        net = SpikingNetwork(converted_toy(), timesteps=2)
        x = np.zeros((2, 2, 4, 4), np.float32)
        with pytest.raises(ValueError):
            net.forward(x, workers=2, shard_mode="quantum")
        with pytest.raises(ValueError):
            SpikingNetwork(converted_toy(), timesteps=2, shard_mode="quantum")

    def test_clone_shares_weights_and_remaps_children(self):
        from repro.snn.engines import clone_for_inference

        model = converted_resnet()
        clone = clone_for_inference(model)
        assert clone is not model
        # Every parameter object is shared, never copied.
        for (name_a, param_a), (name_b, param_b) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            assert name_a == name_b
            assert param_a is param_b
        # Module objects are all fresh, and attribute access reaches the
        # clone's children, not the original's.
        originals = {id(m) for _, m in model.named_modules()}
        for _, module in clone.named_modules():
            assert id(module) not in originals
        assert clone.conv1 is clone._modules["conv1"]
        assert clone.layer1 is clone._modules["layer1"]


class TestBoundedCaches:
    """Cross-run caches are bounded LRUs so long-lived multi-model
    processes cannot grow memory without limit."""

    def test_lru_cache_evicts_least_recently_used(self):
        from repro.snn.engines import LRUCache

        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b", the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_effective_weight_cache_bounded(self):
        from repro.snn.engines import WEIGHT_CACHE_CAPACITY
        from repro.snn.engines.base import _effective_weight

        engine = TimeBatchedEngine()
        modules = [
            nn.Linear(3, 2, rng=np.random.default_rng(i))
            for i in range(WEIGHT_CACHE_CAPACITY + 10)
        ]
        for module in modules:
            weight = _effective_weight(module, engine._weight_cache)
            assert weight is module.weight.data
        assert len(engine._weight_cache) == WEIGHT_CACHE_CAPACITY

    def test_pad_workspace_cache_bounded(self):
        from repro.tensor.functional import (
            _PAD_CACHE,
            _PAD_CACHE_CAPACITY,
            im2col,
        )

        rng = np.random.default_rng(0)
        for n in range(1, _PAD_CACHE_CAPACITY + 6):
            x = rng.normal(size=(n, 2, 4, 4)).astype(np.float32)
            im2col(x, 3, 1, 1)
        assert len(_PAD_CACHE.buffers) <= _PAD_CACHE_CAPACITY

    def test_im2col_plan_cache_bounded(self):
        from repro.tensor.functional import (
            _PLAN_CACHE,
            _PLAN_CACHE_CAPACITY,
            _im2col_plan,
        )

        for h in range(4, 4 + _PLAN_CACHE_CAPACITY + 8):
            _im2col_plan(1, h, 4, 3, 1, 1)
        assert len(_PLAN_CACHE) <= _PLAN_CACHE_CAPACITY


class TestLRUEvictionOrder:
    """Eviction order of the shared engine caches: strict LRU — a hit
    (get) and an overwrite (put) both refresh recency, evictions walk
    the stale end in order."""

    def _cache(self, capacity=3):
        from repro.snn.engines import LRUCache

        cache = LRUCache(capacity)
        for key in "abc":
            cache.put(key, key.upper())
        return cache

    def test_insertion_order_evicts_oldest_first(self):
        cache = self._cache()
        cache.put("d", "D")  # evicts a
        cache.put("e", "E")  # evicts b
        assert "a" not in cache and "b" not in cache
        assert [k for k, _ in cache.items()] == ["c", "d", "e"]

    def test_get_refreshes_recency(self):
        cache = self._cache()
        cache.get("a")       # a becomes most recent -> b is now LRU
        cache.put("d", "D")  # evicts b
        assert "b" not in cache
        assert [k for k, _ in cache.items()] == ["c", "a", "d"]

    def test_put_overwrite_refreshes_recency(self):
        cache = self._cache()
        cache.put("a", "A2")  # overwrite refreshes, value replaced
        cache.put("d", "D")   # evicts b, not a
        assert "b" not in cache
        assert cache.get("a") == "A2"

    def test_miss_does_not_disturb_order(self):
        cache = self._cache()
        assert cache.get("zzz", "fallback") == "fallback"
        cache.put("d", "D")  # still evicts a, the true LRU
        assert "a" not in cache

    def test_pop_removes_without_eviction(self):
        cache = self._cache()
        assert cache.pop("b") == "B"
        assert cache.pop("b", "gone") == "gone"
        cache.put("d", "D")  # capacity free again: nothing evicted
        assert [k for k, _ in cache.items()] == ["a", "c", "d"]


class TestProfileFormatting:
    """RunStats.profile_table()/profile_records() rendering contract —
    the shapes downstream consumers (CLI --profile, BENCH_engines.json)
    parse."""

    @pytest.fixture(scope="class")
    def stats(self):
        net = SpikingNetwork(converted_toy(), timesteps=3, engine="event")
        x = np.random.default_rng(40).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        return net.last_run_stats

    def test_records_columns_and_rounding(self, stats):
        records = stats.profile_records()
        assert [r["name"] for r in records] == [l.name for l in stats.layers]
        for row, layer in zip(records, stats.layers):
            assert set(row) == {
                "name", "kind", "backend", "source", "wall_clock_ms",
                "predicted_ms", "density", "synaptic_ops",
            }
            assert row["backend"] == "event"  # fixed engine: no per-layer choice
            assert row["source"] == ""  # fixed engine: no planner provenance
            assert row["wall_clock_ms"] == round(layer.wall_clock_seconds * 1e3, 3)
            assert row["density"] == round(layer.density, 6)
            assert isinstance(row["synaptic_ops"], int)

    def test_table_header_and_row_count(self, stats):
        table = stats.profile_table()
        lines = table.splitlines()
        header = lines[0]
        for column in ("layer", "kind", "backend", "wall_ms", "density", "synaptic_ops"):
            assert column in header
        # One line per layer between header and the footer summary.
        assert len(lines) == 1 + len(stats.layers) + 1

    def test_table_footer_summarises_run(self, stats):
        footer = stats.profile_table().splitlines()[-1]
        assert "run wall clock" in footer
        assert "attributed to layers" in footer
        assert f"engine {stats.engine}" in footer
        assert f"workers {stats.workers}" in footer

    def test_density_column_bounds(self, stats):
        for row in stats.profile_records():
            assert 0.0 <= row["density"] <= 1.0

    def test_empty_run_stats_render(self):
        from repro.snn.stats import RunStats

        empty = RunStats(batch_size=0, timesteps=0)
        assert empty.profile_records() == []
        lines = empty.profile_table().splitlines()
        assert len(lines) == 2  # header + footer survive zero layers
        assert "engine ?" in lines[-1]


class TestEquivalenceResidual:
    """The event engine must handle non-sequential graphs (ResNet)."""

    def test_resnet_logits_and_predictions_match(self):
        model = converted_resnet()
        x = np.random.default_rng(3).normal(size=(4, 3, 32, 32)).astype(np.float32)
        dense = SpikingNetwork(model, timesteps=4, engine="dense")
        ld = dense.forward(x)
        event = SpikingNetwork(model, timesteps=4, engine="event")
        le = event.forward(x)
        assert np.allclose(ld, le, atol=1e-3)
        assert np.array_equal(ld.argmax(1), le.argmax(1))

    def test_resnet_event_does_less_work(self):
        model = converted_resnet()
        x = np.random.default_rng(4).normal(size=(4, 3, 32, 32)).astype(np.float32)
        dense = SpikingNetwork(model, timesteps=4, engine="dense")
        dense.forward(x)
        event = SpikingNetwork(model, timesteps=4, engine="event")
        event.forward(x)
        assert (
            event.last_run_stats.total_synaptic_ops
            < dense.last_run_stats.total_synaptic_ops
        )


class TestRunStats:
    def test_stats_populated(self):
        x = np.random.default_rng(5).normal(size=(5, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="event")
        net.forward(x)
        stats = net.last_run_stats
        assert stats is not None
        assert stats.engine == "event"
        assert stats.batch_size == 5
        assert stats.timesteps == 4
        assert stats.wall_clock_seconds > 0
        kinds = [l.kind for l in stats.layers]
        assert kinds == ["conv", "neuron", "linear"]

    def test_spike_rates_in_unit_interval(self):
        x = np.random.default_rng(6).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="event")
        net.forward(x)
        rates = net.last_run_stats.spike_rates()
        assert len(rates) == 1
        assert 0.0 <= rates[0] <= 1.0

    def test_dense_engine_counts_full_ops(self):
        x = np.random.default_rng(7).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=3, engine="dense")
        net.forward(x)
        stats = net.last_run_stats
        conv = stats.layers[0]
        # conv: 2 samples x 3 steps x 16 output pixels x (2*3*3 taps) x 4 out-ch
        assert conv.synaptic_ops == 2 * 3 * 16 * 18 * 4
        assert conv.synaptic_ops == conv.dense_synaptic_ops

    def test_event_ops_bounded_by_dense(self):
        x = np.random.default_rng(8).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="event")
        net.forward(x)
        stats = net.last_run_stats
        assert 0 < stats.total_synaptic_ops <= stats.total_dense_synaptic_ops
        assert 0.0 <= stats.synaptic_op_saving < 1.0

    def test_layer_table_renders(self):
        x = np.random.default_rng(9).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net = SpikingNetwork(converted_toy(), timesteps=2, engine="event")
        net.forward(x)
        table = net.last_run_stats.layer_table()
        assert "spike_rate" in table
        assert "overall" in table

    def test_interceptors_removed_after_run(self):
        net = SpikingNetwork(converted_toy(), timesteps=2, engine="event")
        x = np.random.default_rng(10).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        for _, module in net.model.named_modules():
            assert "forward" not in module.__dict__


class TestTimestepValidation:
    def test_zero_timesteps_rejected_not_defaulted(self):
        net = SpikingNetwork(converted_toy(), timesteps=4)
        x = np.zeros((1, 2, 4, 4), np.float32)
        with pytest.raises(ValueError):
            net.forward(x, timesteps=0)
        with pytest.raises(ValueError):
            net.forward_per_step(x, timesteps=0)
        with pytest.raises(ValueError):
            net.accuracy_per_step(x, np.zeros(1, np.int64), timesteps=-1)

    def test_none_uses_default(self):
        net = SpikingNetwork(converted_toy(), timesteps=3)
        x = np.zeros((1, 2, 4, 4), np.float32)
        net.forward(x, timesteps=None)
        assert net.last_run_stats.timesteps == 3


class TestSparseKernels:
    def test_sparse_conv_matches_dense_at_any_density(self):
        rng = np.random.default_rng(11)
        w = rng.normal(size=(5, 3, 3, 3)).astype(np.float32)
        for density in (0.0, 0.05, 0.5, 1.0):
            x = (rng.random((2, 3, 8, 8)) < density).astype(np.float32) * 1.5
            got, performed = sparse_conv2d(x, w, None, stride=1, padding=1)
            from repro.tensor import functional as F
            from repro.tensor.functional import im2col

            want = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1).data
            assert np.allclose(got, want, atol=1e-5)
            cols, _, _ = im2col(x, 3, 1, 1)
            assert performed == np.count_nonzero(cols) * 5

    def test_sparse_conv_strided(self):
        rng = np.random.default_rng(12)
        w = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        x = (rng.random((1, 2, 9, 9)) < 0.2).astype(np.float32)
        got, _ = sparse_conv2d(x, w, None, stride=2, padding=1)
        from repro.tensor import functional as F

        want = F.conv2d(Tensor(x), Tensor(w), None, stride=2, padding=1).data
        assert np.allclose(got, want, atol=1e-5)

    def test_sparse_conv_with_bias(self):
        rng = np.random.default_rng(13)
        w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
        b = rng.normal(size=3).astype(np.float32)
        x = np.zeros((2, 2, 5, 5), np.float32)  # fully silent input
        got, performed = sparse_conv2d(x, w, b, stride=1, padding=1)
        assert performed == 0
        # Silent input: every output pixel is exactly the bias.
        assert np.allclose(got, b.reshape(1, 3, 1, 1) * np.ones_like(got))

    def test_sparse_linear_matches_dense(self):
        rng = np.random.default_rng(14)
        w = rng.normal(size=(7, 20)).astype(np.float32)
        b = rng.normal(size=7).astype(np.float32)
        x = (rng.random((4, 20)) < 0.3).astype(np.float32) * 2.0
        got, performed = sparse_linear(x, w, b)
        want = x @ w.T + b
        assert np.allclose(got, want, atol=1e-5)
        assert performed == np.count_nonzero(x) * 7
