"""ANN-to-SNN conversion tests, including the QCFS T=L exactness property."""

import numpy as np
import pytest

from repro import nn
from repro.snn import (
    IFNeuron,
    LIFNeuron,
    SpikingNetwork,
    convert_to_snn,
    spiking_layers,
)
from repro.snn.convert import reset_network_state
from repro.snn.neurons import ResetMode
from repro.tensor import Tensor, no_grad


def make_quant_stack(levels=2, step=2.0, seed=0):
    """conv-bn-qrelu x2 with populated BN stats, in eval mode."""
    model = nn.Sequential(
        nn.Conv2d(3, 6, 3, padding=1, rng=np.random.default_rng(seed)),
        nn.BatchNorm2d(6),
        nn.QuantReLU(levels=levels, init_step=step),
        nn.Conv2d(6, 4, 3, padding=1, rng=np.random.default_rng(seed + 1)),
        nn.BatchNorm2d(4),
        nn.QuantReLU(levels=levels, init_step=step),
    )
    rng = np.random.default_rng(seed + 2)
    model.train()
    with no_grad():
        for _ in range(5):
            model(Tensor(rng.normal(size=(8, 3, 6, 6)).astype(np.float32)))
    model.eval()
    return model


class TestConversionSurgery:
    def test_replaces_all_quant_relus(self):
        model = make_quant_stack()
        convert_to_snn(model)
        assert len(spiking_layers(model)) == 2
        assert not any(isinstance(m, nn.QuantReLU) for m in model.modules())

    def test_threshold_is_learned_step(self):
        model = make_quant_stack(step=1.75)
        convert_to_snn(model)
        for layer in spiking_layers(model):
            assert layer.threshold == pytest.approx(1.75)

    def test_lif_option(self):
        model = make_quant_stack()
        convert_to_snn(model, neuron="lif", leak=0.875)
        assert all(isinstance(l, LIFNeuron) for l in spiking_layers(model))
        assert spiking_layers(model)[0].leak == pytest.approx(0.875)

    def test_reset_mode_propagates(self):
        model = make_quant_stack()
        convert_to_snn(model, reset=ResetMode.ZERO)
        assert all(l.reset is ResetMode.ZERO for l in spiking_layers(model))

    def test_v_init_propagates(self):
        model = make_quant_stack()
        convert_to_snn(model, v_init_fraction=0.25)
        assert spiking_layers(model)[0].v_init_fraction == 0.25

    def test_rejects_plain_relu_model(self):
        model = nn.Sequential(nn.Conv2d(1, 1, 3), nn.ReLU())
        with pytest.raises(ValueError):
            convert_to_snn(model)

    def test_rejects_bad_neuron_name(self):
        with pytest.raises(ValueError):
            convert_to_snn(make_quant_stack(), neuron="izhikevich")

    def test_reset_network_state(self):
        model = make_quant_stack()
        convert_to_snn(model)
        model(Tensor(np.zeros((1, 3, 6, 6), np.float32)))
        assert spiking_layers(model)[0].v is not None
        reset_network_state(model)
        assert all(l.v is None for l in spiking_layers(model))


class TestQCFSEquivalence:
    """The core theoretical property behind the paper's fast conversion."""

    @pytest.mark.parametrize("levels", [2, 4, 8])
    def test_single_layer_exact_at_t_equals_l(self, levels):
        # For constant input, T=L timesteps of IF with v0 = theta/2
        # reproduce the L-level quantised ReLU exactly.
        step = 2.0
        q = nn.QuantReLU(levels=levels, init_step=step)
        neuron = IFNeuron(threshold=step, v_init_fraction=0.5)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 3, size=(64,)).astype(np.float32)
        ref = q(Tensor(x)).data
        total = np.zeros_like(x)
        for _ in range(levels):
            total += neuron(Tensor(x / levels * levels)).data  # constant drive x
        avg = total / levels * 1.0
        # Average output*L/threshold equals quantised output/step*L.
        assert np.allclose(avg * (1.0 / levels) * levels, ref, atol=1e-5)

    def test_stack_error_decreases_then_plateaus(self):
        model = make_quant_stack(step=2.0)
        twin = make_quant_stack(step=2.0)
        twin.load_state_dict(model.state_dict())
        with no_grad():
            ref = model(Tensor(np.random.default_rng(5).normal(size=(4, 3, 6, 6)).astype(np.float32)))
        convert_to_snn(twin)
        x = np.random.default_rng(5).normal(size=(4, 3, 6, 6)).astype(np.float32)
        net = SpikingNetwork(twin, timesteps=32)
        outs = net.forward_per_step(x, 32)
        err_2 = np.abs(outs[1] / 2 - ref.data).mean()
        err_32 = np.abs(outs[31] / 32 - ref.data).mean()
        # More timesteps should not make the approximation much worse.
        assert err_32 <= err_2 + 0.1

    def test_v_init_half_beats_zero(self):
        # QCFS: initialising the membrane at theta/2 centres the error.
        step, levels = 2.0, 2
        q = nn.QuantReLU(levels=levels, init_step=step)
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 2.0, size=(512,)).astype(np.float32)
        ref = q(Tensor(x)).data

        def snn_error(v_frac):
            neuron = IFNeuron(threshold=step, v_init_fraction=v_frac)
            total = np.zeros_like(x)
            for _ in range(levels):
                total += neuron(Tensor(x)).data
            return np.abs(total / levels - ref).mean()

        assert snn_error(0.5) < snn_error(0.0)
