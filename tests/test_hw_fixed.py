"""Fixed-point arithmetic tests."""

import numpy as np
import pytest

from repro.hw.fixed import (
    fixed_mul,
    fixed_to_float,
    int_limits,
    quantize_to_fixed,
    sat_add,
    saturate,
)


class TestLimitsAndSaturate:
    def test_limits_int8(self):
        assert int_limits(8) == (-128, 127)

    def test_limits_int16(self):
        assert int_limits(16) == (-32768, 32767)

    def test_limits_reject_tiny(self):
        with pytest.raises(ValueError):
            int_limits(1)

    def test_saturate_clamps_both_sides(self):
        x = np.array([-1000, -128, 0, 127, 1000])
        out = saturate(x, 8)
        assert out.tolist() == [-128, -128, 0, 127, 127]

    def test_saturate_idempotent(self):
        x = np.array([-200, 300])
        assert np.array_equal(saturate(saturate(x, 8), 8), saturate(x, 8))

    def test_sat_add_overflow(self):
        a = np.array([30000], np.int64)
        b = np.array([10000], np.int64)
        assert sat_add(a, b, 16).tolist() == [32767]

    def test_sat_add_underflow(self):
        assert sat_add(np.array([-30000]), np.array([-10000]), 16).tolist() == [-32768]


class TestQuantizeToFixed:
    def test_roundtrip_error(self):
        values = np.linspace(-3, 3, 101)
        fixed = quantize_to_fixed(values, frac_bits=8, bits=16)
        back = fixed_to_float(fixed, 8)
        assert np.abs(back - values).max() <= 0.5 / 256 + 1e-12

    def test_saturates(self):
        fixed = quantize_to_fixed(np.array([1e6]), frac_bits=8, bits=16)
        assert fixed[0] == 32767

    def test_rounds_to_nearest(self):
        fixed = quantize_to_fixed(np.array([0.0059]), frac_bits=8, bits=16)
        assert fixed[0] == 2  # 0.0059*256 = 1.51 -> 2


class TestFixedMul:
    def test_matches_float_multiply(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-1000, 1000, size=100)
        coeff_real = rng.uniform(-2, 2, size=100)
        coeff = quantize_to_fixed(coeff_real, 8, 16)
        out = fixed_mul(a, coeff, 8, 32)
        ref = a * fixed_to_float(coeff, 8)
        assert np.abs(out - ref).max() <= 0.51

    def test_rounding_half_up(self):
        # (1 * 128) >> 8 with the +half rounding = 1 (0.5 rounds up).
        out = fixed_mul(np.array([1]), np.array([128]), 8, 16)
        assert out[0] == 1

    def test_saturates_output(self):
        out = fixed_mul(np.array([32767]), np.array([32767]), 8, 16)
        assert out[0] == 32767
