"""Property-based tests on hardware-layer invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.aggregation import ActivationUnit, BatchNormUnit
from repro.hw.config import LayerConfig, LayerKind
from repro.hw.fixed import fixed_to_float, quantize_to_fixed
from repro.hw.isa import decode_layer, encode_layer


# ----------------------------------------------------------------------
# Register ABI: encode/decode is the identity on valid configurations
# ----------------------------------------------------------------------
def test_oversized_kernel_rejected():
    import pytest

    with pytest.raises(ValueError):
        LayerConfig(
            kind=LayerKind.CONV, in_channels=1, out_channels=1,
            in_height=1, in_width=1, kernel_size=3, padding=0,
        )


@given(
    st.sampled_from([LayerKind.CONV, LayerKind.FC]),
    st.integers(1, 1023),   # in_channels
    st.integers(1, 1023),   # out_channels
    st.integers(1, 512),    # spatial
    st.integers(1, 15),     # kernel
    st.integers(1, 15),     # stride
    st.integers(0, 15),     # padding
    st.integers(1, 65535),  # threshold
    st.booleans(),          # lif
    st.integers(1, 200),    # timesteps
)
@settings(max_examples=80, deadline=None)
def test_isa_roundtrip_property(
    kind, cin, cout, hw, k, stride, pad, threshold, lif, timesteps
):
    if kind is LayerKind.CONV and k > hw + 2 * pad:
        return  # invalid geometry, rejected by LayerConfig (tested below)
    cfg = LayerConfig(
        kind=kind,
        in_channels=cin,
        out_channels=cout,
        in_height=hw,
        in_width=hw,
        kernel_size=k,
        stride=stride,
        padding=pad,
        threshold_int=threshold,
        lif_mode=lif,
    )
    decoded = decode_layer(encode_layer(cfg, timesteps=timesteps))
    assert decoded.kind is kind
    assert decoded.in_channels == cin
    assert decoded.out_channels == cout
    assert decoded.in_height == decoded.in_width == hw
    assert decoded.kernel_size == k
    assert decoded.stride == stride
    assert decoded.padding == pad
    assert decoded.threshold_int == threshold
    assert decoded.lif_mode == lif
    assert decoded.timesteps == timesteps


# ----------------------------------------------------------------------
# Batch-norm unit: integer result within one LSB of the real transform
# ----------------------------------------------------------------------
@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=60, deadline=None)
def test_bn_unit_error_bound_property(seed):
    rng = np.random.default_rng(seed)
    channels = int(rng.integers(1, 8))
    psum = rng.integers(-4000, 4000, size=(channels, 3, 3))
    g_real = rng.uniform(-4, 4, size=channels)
    h_real = rng.integers(-1000, 1000, size=channels).astype(np.float64)
    g_int = quantize_to_fixed(g_real, 8, 16)
    bn = BatchNormUnit()
    out = bn.apply(psum, g_int, h_real.astype(np.int64), 8)
    ref = psum * fixed_to_float(g_int, 8)[:, None, None] + h_real[:, None, None]
    ref = np.clip(ref, -32768, 32767)
    assert np.abs(out - ref).max() <= 1.0


# ----------------------------------------------------------------------
# Activation unit: charge conservation under reset-by-subtraction
# ----------------------------------------------------------------------
@given(st.integers(0, 2 ** 31 - 1), st.integers(1, 30))
@settings(max_examples=50, deadline=None)
def test_activation_charge_conservation_property(seed, steps):
    rng = np.random.default_rng(seed)
    unit = ActivationUnit()
    threshold = int(rng.integers(64, 4096))
    shape = (int(rng.integers(1, 16)),)
    membrane = unit.initial_membrane(shape, threshold, 0.5)
    v0 = membrane.copy()
    injected = np.zeros(shape, dtype=np.int64)
    spikes = np.zeros(shape, dtype=np.int64)
    for _ in range(steps):
        current = rng.integers(-threshold // 2, threshold // 2, size=shape)
        result = unit.step(current, membrane, threshold)
        injected += current
        spikes += result.spikes
        membrane = result.membrane
    # With no saturation events: v_T = v_0 + injected - spikes * theta.
    expected = v0 + injected - spikes * threshold
    # Saturation can only pull |v| towards the rails; when expected is
    # within range the equality is exact.
    in_range = (expected >= -32768) & (expected <= 32767)
    assert np.array_equal(membrane[in_range], expected[in_range])


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_activation_lif_leak_never_increases_magnitude(seed):
    rng = np.random.default_rng(seed)
    unit = ActivationUnit()
    v = rng.integers(-20000, 20000, size=8)
    zero = np.zeros(8, dtype=np.int64)
    res = unit.step(zero, v.copy(), threshold_int=10 ** 6, lif_mode=True, leak_shift=4)
    assert (np.abs(res.membrane) <= np.abs(v)).all()


# ----------------------------------------------------------------------
# Augmentation: geometry-preserving, value-set-preserving (crop)
# ----------------------------------------------------------------------
@given(st.integers(0, 2 ** 31 - 1), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_crop_preserves_shape_and_finite_property(seed, padding):
    from repro.data.augment import random_crop

    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 2, 12, 12)).astype(np.float32)
    out = random_crop(x, rng, padding=padding)
    assert out.shape == x.shape
    assert np.isfinite(out).all()
    # Reflect-padded crops only contain values present in the original.
    assert set(np.round(out.ravel(), 5)).issubset(set(np.round(x.ravel(), 5)))
