"""PS<->PL traffic model tests."""

import numpy as np
import pytest

from repro.hw.config import PYNQ_Z2
from repro.hw.traffic import TrafficModel
from repro.pipeline import build_quantized_twin
from repro.snn import convert_to_snn
from repro.hw.mapper import map_network


@pytest.fixture(scope="module")
def mapped_small():
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    convert_to_snn(model)
    return map_network(model)


@pytest.fixture(scope="module")
def mapped_full():
    model = build_quantized_twin("resnet18", width=1.0, num_classes=10, levels=2, seed=0)
    convert_to_snn(model)
    return map_network(model)


class TestLayerTraffic:
    def test_components_positive(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_small, timesteps=8)
        assert len(report.layers) == len(mapped_small.layers)
        first = report.layers[0]
        assert first.weight_bytes > 0
        assert first.spike_in_bytes > 0
        assert first.total_bytes == (
            first.weight_bytes + first.spike_in_bytes + first.spike_out_bytes
            + first.membrane_swap_bytes + first.residual_bytes + first.config_bytes
        )

    def test_spikes_scale_with_timesteps(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        t4 = model.network_traffic(mapped_small, timesteps=4)
        t8 = model.network_traffic(mapped_small, timesteps=8)
        s4 = sum(l.spike_in_bytes + l.spike_out_bytes for l in t4.layers)
        s8 = sum(l.spike_in_bytes + l.spike_out_bytes for l in t8.layers)
        assert s8 == 2 * s4

    def test_weights_do_not_scale_with_timesteps(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        t4 = model.network_traffic(mapped_small, timesteps=4)
        t8 = model.network_traffic(mapped_small, timesteps=8)
        w4 = sum(l.weight_bytes for l in t4.layers)
        w8 = sum(l.weight_bytes for l in t8.layers)
        assert w4 == w8

    def test_frame_layer_heavier_input(self, mapped_small):
        # INT8 frames cost 8x binary spike planes of the same geometry.
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_small, timesteps=8)
        frame = report.layers[0]
        assert frame.spike_in_bytes == 3 * 32 * 32 * 8  # bytes x T

    def test_small_layers_no_membrane_swap(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_small, timesteps=8)
        assert all(l.membrane_swap_bytes == 0 for l in report.layers)

    def test_full_width_early_layers_swap_membranes(self, mapped_full):
        # 64ch @ 32x32 = 128 kB of 16-bit membranes > the 32 kB half.
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_full, timesteps=8)
        stem = report.layers[0]
        assert stem.membrane_swap_bytes > 0

    def test_residual_traffic_counted(self, mapped_full):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_full, timesteps=8)
        conv2 = [l for l in report.layers if l.name.endswith(".conv2")]
        assert all(l.residual_bytes > 0 for l in conv2)

    def test_config_includes_bn_coefficients(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_small, timesteps=8)
        spiking = report.layers[0]
        assert spiking.config_bytes > TrafficModel.CONFIG_BYTES_PER_LAYER


class TestReportAggregates:
    def test_bandwidth(self, mapped_small):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_small, timesteps=8)
        assert report.bandwidth_bytes_per_second(10.0) == report.total_bytes * 10

    def test_dominant_component_named(self, mapped_full):
        model = TrafficModel(PYNQ_Z2)
        report = model.network_traffic(mapped_full, timesteps=8)
        assert report.dominant_component() in (
            "weights", "spikes", "membranes", "residuals", "config",
        )

    def test_paper_motivation_spike_traffic_grows_with_t(self, mapped_full):
        """§III-D: SNNs move more data because inputs span T timesteps."""
        model = TrafficModel(PYNQ_Z2)
        t1 = model.network_traffic(mapped_full, timesteps=1).total_bytes
        t8 = model.network_traffic(mapped_full, timesteps=8).total_bytes
        assert t8 > 2 * t1
