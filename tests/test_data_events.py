"""Event-driven (DVS-style) synthetic dataset tests."""

import numpy as np
import pytest

from repro.data.events import EventStream, SyntheticDVS, accumulate_events


class TestSyntheticDVS:
    @pytest.fixture(scope="class")
    def dvs(self):
        return SyntheticDVS(num_train=40, num_test=10, timesteps=12, seed=0)

    def test_shapes(self, dvs):
        sample = dvs.train[0]
        assert sample.events.shape == (12, 2, 32, 32)
        assert sample.events.dtype == np.uint8

    def test_events_are_binary(self, dvs):
        for sample in dvs.train[:10]:
            assert set(np.unique(sample.events)).issubset({0, 1})

    def test_deterministic(self):
        a = SyntheticDVS(num_train=5, num_test=2, seed=3)
        b = SyntheticDVS(num_train=5, num_test=2, seed=3)
        assert np.array_equal(a.train[0].events, b.train[0].events)
        assert a.train[0].label == b.train[0].label

    def test_temporal_sparsity(self, dvs):
        # DVS streams are sparse: most pixels silent at any timestep.
        assert dvs.mean_event_rate() < 0.3

    def test_all_classes_present(self):
        dvs = SyntheticDVS(num_train=100, num_test=10, seed=1)
        labels = {s.label for s in dvs.train}
        assert labels == {0, 1, 2, 3}

    def test_polarity_balance(self, dvs):
        # A moving bar creates both ON (leading edge) and OFF (trailing).
        sample = dvs.train[0]
        assert sample.events[:, 0].sum() > 0
        assert sample.events[:, 1].sum() > 0

    def test_motion_classes_distinguishable(self, dvs):
        # Vertical motion (dy!=0) produces different event geometry than
        # horizontal: compare row-variance of event counts.
        by_label = {}
        for s in dvs.train:
            by_label.setdefault(s.label, []).append(s.events.sum(axis=(0, 1)))
        assert len(by_label) >= 2

    def test_split_arrays(self, dvs):
        events, labels = dvs.split_arrays("train")
        assert events.shape[0] == 40
        assert labels.shape == (40,)
        events_t, labels_t = dvs.split_arrays("test")
        assert events_t.shape[0] == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticDVS(timesteps=1)
        with pytest.raises(ValueError):
            SyntheticDVS(noise_rate=1.5)

    def test_event_rate_property(self, dvs):
        sample = dvs.train[0]
        assert sample.event_rate == pytest.approx(float(sample.events.mean()))

    def test_as_spike_frames_dtype(self, dvs):
        frames = dvs.train[0].as_spike_frames()
        assert frames.dtype == np.float32


class TestAccumulateEvents:
    def test_rebinning_shape(self):
        events = np.zeros((16, 2, 8, 8), np.uint8)
        out = accumulate_events(events, bins=4)
        assert out.shape == (4, 2, 8, 8)

    def test_binary_output(self):
        rng = np.random.default_rng(0)
        events = (rng.random((16, 2, 4, 4)) < 0.5).astype(np.uint8)
        out = accumulate_events(events, bins=2)
        assert set(np.unique(out)).issubset({0, 1})

    def test_preserves_activity(self):
        events = np.zeros((8, 2, 4, 4), np.uint8)
        events[3, 0, 1, 1] = 1
        out = accumulate_events(events, bins=2)
        assert out[0, 0, 1, 1] == 1  # timestep 3 lands in the first bin

    def test_invalid_bins(self):
        events = np.zeros((8, 2, 4, 4), np.uint8)
        with pytest.raises(ValueError):
            accumulate_events(events, bins=0)
        with pytest.raises(ValueError):
            accumulate_events(events, bins=9)


class TestEventDrivenAcceleratorPath:
    def test_events_feed_the_spiking_core(self):
        """The SIA's event-driven input mode: DVS planes straight to PEs."""
        from repro.hw import PYNQ_Z2, SpikingCore

        dvs = SyntheticDVS(num_train=2, num_test=1, timesteps=8, seed=0)
        core = SpikingCore(PYNQ_Z2, event_driven=True)
        rng = np.random.default_rng(1)
        weights = rng.integers(-128, 128, size=(16, 2, 3, 3))
        sample = dvs.train[0]
        total_cycles = 0
        for t in range(sample.timesteps):
            spikes = sample.events[t].astype(np.int64)
            psum, stats = core.conv_timestep(spikes, weights, padding=1)
            total_cycles += stats.cycles
            assert psum.shape == (16, 32, 32)
        # Sparse event streams: far fewer cycles than dense scheduling.
        dense = SpikingCore(PYNQ_Z2, event_driven=False)
        dense_cycles = 0
        for t in range(sample.timesteps):
            _, stats = dense.conv_timestep(
                sample.events[t].astype(np.int64), weights, padding=1
            )
            dense_cycles += stats.cycles
        assert total_cycles < 0.7 * dense_cycles
