"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.hw.core import SpikingCore
from repro.hw.fixed import (
    fixed_to_float,
    int_limits,
    quantize_to_fixed,
    sat_add,
    saturate,
)
from repro.nn.quant import dequantize_weight, quantize_weight_int8
from repro.snn import IFNeuron
from repro.tensor import Tensor
from repro.tensor.functional import col2im, im2col


# ----------------------------------------------------------------------
# Fixed point
# ----------------------------------------------------------------------
@given(
    hnp.arrays(np.int64, st.integers(1, 30), elements=st.integers(-(10 ** 9), 10 ** 9)),
    st.integers(2, 32),
)
def test_saturate_within_limits_and_idempotent(values, bits):
    out = saturate(values, bits)
    lo, hi = int_limits(bits)
    assert out.min() >= lo and out.max() <= hi
    assert np.array_equal(saturate(out, bits), out)


@given(
    hnp.arrays(np.int64, 10, elements=st.integers(-30000, 30000)),
    hnp.arrays(np.int64, 10, elements=st.integers(-30000, 30000)),
)
def test_sat_add_commutative(a, b):
    assert np.array_equal(sat_add(a, b, 16), sat_add(b, a, 16))


@given(
    hnp.arrays(
        np.float64, st.integers(1, 20),
        elements=st.floats(-100, 100, allow_nan=False),
    ),
    st.integers(2, 12),
)
def test_quantize_to_fixed_error_bound(values, frac_bits):
    fixed = quantize_to_fixed(values, frac_bits, 32)
    back = fixed_to_float(fixed, frac_bits)
    assert np.abs(back - values).max() <= 0.5 / (1 << frac_bits) + 1e-12


# ----------------------------------------------------------------------
# Weight quantisation
# ----------------------------------------------------------------------
@given(
    hnp.arrays(
        np.float32, st.integers(1, 64),
        elements=st.floats(-5, 5, allow_nan=False, width=32),
    )
)
def test_weight_quant_roundtrip_bound(weights):
    w_int, scale = quantize_weight_int8(weights)
    back = dequantize_weight(w_int, scale)
    assert np.abs(back - weights).max() <= scale / 2 + 1e-6
    assert w_int.min() >= -128 and w_int.max() <= 127


# ----------------------------------------------------------------------
# im2col / col2im adjointness
# ----------------------------------------------------------------------
@given(
    st.integers(1, 2),   # batch
    st.integers(1, 3),   # channels
    st.integers(4, 8),   # spatial
    st.integers(1, 3),   # kernel
    st.integers(1, 2),   # stride
    st.integers(0, 1),   # padding
    st.integers(0, 2 ** 31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_im2col_col2im_adjoint(n, c, hw, k, stride, pad, seed):
    if k > hw + 2 * pad:
        return
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, c, hw, hw))
    cols, oh, ow = im2col(x, k, stride, pad)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, k, stride, pad)).sum())
    assert abs(lhs - rhs) < 1e-6 * max(1.0, abs(lhs))


# ----------------------------------------------------------------------
# IF neuron invariants
# ----------------------------------------------------------------------
@given(
    hnp.arrays(
        np.float32, st.integers(1, 32),
        elements=st.floats(0, 2.0, allow_nan=False, width=32),
    ),
    st.integers(1, 30),
)
@settings(max_examples=50, deadline=None)
def test_if_spike_count_bounded_by_input_integral(currents, timesteps):
    """Total emitted charge never exceeds injected charge + v_init."""
    threshold = 1.0
    neuron = IFNeuron(threshold=threshold, v_init_fraction=0.5)
    total_out = 0.0
    for _ in range(timesteps):
        out = neuron(Tensor(currents))
        total_out += float(out.data.sum())
    injected = float(currents.sum()) * timesteps + 0.5 * threshold * currents.size
    assert total_out <= injected + 1e-4


@given(
    hnp.arrays(
        np.float32, 16,
        elements=st.floats(-1.0, 1.0, allow_nan=False, width=32),
    )
)
@settings(max_examples=50, deadline=None)
def test_if_membrane_conservation_reset_by_subtraction(currents):
    """v_T = v_0 + sum(inputs) - threshold * total_spikes, exactly."""
    neuron = IFNeuron(threshold=1.0, v_init_fraction=0.5)
    total_spikes = 0.0
    steps = 8
    for _ in range(steps):
        out = neuron(Tensor(currents))
        total_spikes += out.data / 1.0
    expected = 0.5 + currents * steps - total_spikes
    assert np.allclose(neuron.v, expected, atol=1e-4)


@given(st.floats(0.01, 0.99), st.integers(10, 200))
@settings(max_examples=30, deadline=None)
def test_if_rate_codes_constant_input(z, timesteps):
    """Constant input z in (0, theta): rate -> z/theta within 1/T."""
    neuron = IFNeuron(threshold=1.0, v_init_fraction=0.5)
    spikes = 0
    for _ in range(timesteps):
        spikes += int(neuron(Tensor(np.array([z], np.float32))).data[0] > 0)
    assert abs(spikes / timesteps - z) <= 1.0 / timesteps + 1e-3


# ----------------------------------------------------------------------
# Spiking core: functional equivalence under random inputs
# ----------------------------------------------------------------------
@given(st.integers(0, 2 ** 31 - 1), st.booleans())
@settings(max_examples=25, deadline=None)
def test_core_psum_equals_integer_convolution(seed, event_driven):
    rng = np.random.default_rng(seed)
    c_in, c_out = rng.integers(1, 4), rng.integers(1, 5)
    spikes = (rng.random((c_in, 6, 6)) < rng.uniform(0, 0.8)).astype(np.int64)
    weights = rng.integers(-128, 128, size=(c_out, c_in, 3, 3))
    core = SpikingCore(event_driven=event_driven)
    psum, stats = core.conv_timestep(spikes, weights, padding=1)
    # Direct dense reference.
    padded = np.pad(spikes, ((0, 0), (1, 1), (1, 1)))
    ref = np.zeros((c_out, 6, 6), np.int64)
    for co in range(c_out):
        for i in range(6):
            for j in range(6):
                ref[co, i, j] = (padded[:, i : i + 3, j : j + 3] * weights[co]).sum()
    assert np.array_equal(psum, np.clip(ref, -32768, 32767))
    assert stats.active_segments <= stats.total_segments


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_event_driven_never_slower(seed):
    rng = np.random.default_rng(seed)
    spikes = (rng.random((2, 6, 6)) < rng.uniform(0, 1)).astype(np.int64)
    weights = rng.integers(-10, 10, size=(3, 2, 3, 3))
    _, sparse = SpikingCore(event_driven=True).conv_timestep(spikes, weights)
    _, dense = SpikingCore(event_driven=False).conv_timestep(spikes, weights)
    assert sparse.cycles <= dense.cycles
