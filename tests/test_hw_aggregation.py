"""Aggregation-core tests: fixed-point BN and the activation unit."""

import numpy as np
import pytest

from repro.hw.aggregation import ActivationUnit, AggregationCore, BatchNormUnit
from repro.hw.config import LayerConfig, LayerKind, PYNQ_Z2
from repro.hw.fixed import quantize_to_fixed


def make_layer(threshold_int=1024, lif=False, **kw):
    return LayerConfig(
        kind=LayerKind.CONV,
        in_channels=2,
        out_channels=3,
        in_height=4,
        in_width=4,
        kernel_size=3,
        padding=1,
        threshold_int=threshold_int,
        lif_mode=lif,
        **kw,
    )


class TestBatchNormUnit:
    def test_matches_float_reference(self):
        rng = np.random.default_rng(0)
        psum = rng.integers(-2000, 2000, size=(3, 4, 4))
        g_real = rng.uniform(-2, 2, size=3)
        h_real = rng.integers(-500, 500, size=3).astype(np.float64)
        g_int = quantize_to_fixed(g_real, 8, 16)
        h_int = h_real.astype(np.int64)
        bn = BatchNormUnit()
        out = bn.apply(psum, g_int, h_int, 8)
        ref = psum * (g_int / 256.0)[:, None, None] + h_real[:, None, None]
        assert np.abs(out - ref).max() <= 1.0

    def test_batched_broadcast(self):
        psum = np.ones((5, 3, 2, 2), np.int64) * 256
        g_int = np.array([256, 512, 1024])  # 1.0, 2.0, 4.0 at frac=8
        h_int = np.array([0, 10, -10])
        out = BatchNormUnit().apply(psum, g_int, h_int, 8)
        assert out.shape == (5, 3, 2, 2)
        assert np.array_equal(out[0, :, 0, 0], [256, 522, 1014])

    def test_rejects_oversized_coeffs(self):
        bn = BatchNormUnit()
        with pytest.raises(ValueError):
            bn.apply(np.ones((1, 2, 2), np.int64), np.array([70000]), np.array([0]), 8)

    def test_rejects_low_rank(self):
        with pytest.raises(ValueError):
            BatchNormUnit().apply(np.ones(4, np.int64), np.array([1]), np.array([0]), 8)

    def test_output_saturates_16bit(self):
        out = BatchNormUnit().apply(
            np.full((1, 1, 1), 32767, np.int64), np.array([32767]), np.array([32767]), 8
        )
        assert out.max() == 32767


class TestActivationUnit:
    def test_if_step_spikes_and_subtracts(self):
        unit = ActivationUnit()
        membrane = np.array([500, 100], np.int64)
        result = unit.step(np.array([600, 100], np.int64), membrane, threshold_int=1024)
        assert result.spikes.tolist() == [1, 0]
        assert result.membrane.tolist() == [76, 200]  # 1100-1024, 200

    def test_reset_to_zero(self):
        unit = ActivationUnit()
        result = unit.step(
            np.array([1200], np.int64),
            np.array([0], np.int64),
            threshold_int=1024,
            reset_to_zero=True,
        )
        assert result.membrane.tolist() == [0]

    def test_lif_leak_shift(self):
        unit = ActivationUnit()
        membrane = np.array([1600], np.int64)
        result = unit.step(
            np.array([0], np.int64), membrane, threshold_int=10**6, lif_mode=True, leak_shift=4
        )
        # v = 1600 - 1600>>4 = 1600 - 100 = 1500.
        assert result.membrane.tolist() == [1500]

    def test_initial_membrane_half_threshold(self):
        unit = ActivationUnit()
        v = unit.initial_membrane((2, 2), threshold_int=1024, v_init_fraction=0.5)
        assert np.all(v == 512)

    def test_membrane_saturates(self):
        unit = ActivationUnit()
        result = unit.step(
            np.array([32767], np.int64), np.array([32767], np.int64), threshold_int=10**6
        )
        assert result.membrane.max() <= 32767

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ActivationUnit().step(np.array([0]), np.array([0]), threshold_int=0)

    def test_spike_count(self):
        unit = ActivationUnit()
        result = unit.step(
            np.array([2000, 2000, 10], np.int64), np.zeros(3, np.int64), threshold_int=1024
        )
        assert result.spike_count == 2


class TestAggregationCore:
    def test_process_pipeline(self):
        core = AggregationCore()
        layer = make_layer(
            g_int=quantize_to_fixed(np.ones(3), 8, 16),
            h_int=np.zeros(3, dtype=np.int64),
        )
        psum = np.full((3, 4, 4), 600, np.int64)
        membrane = core.activation.initial_membrane(psum.shape, 1024, 0.5)
        result, cycles = core.process(psum, membrane, layer)
        # 512 + 600 = 1112 >= 1024 -> all spike.
        assert result.spikes.all()
        assert cycles == -(-48 // core.neurons_per_cycle)

    def test_residual_added_before_threshold(self):
        core = AggregationCore()
        layer = make_layer(
            g_int=quantize_to_fixed(np.ones(3), 8, 16),
            h_int=np.zeros(3, dtype=np.int64),
        )
        psum = np.full((3, 4, 4), 300, np.int64)
        residual = np.full((3, 4, 4), 300, np.int64)
        membrane = core.activation.initial_membrane(psum.shape, 1024, 0.5)
        with_res, _ = core.process(psum, membrane.copy(), layer, residual=residual)
        without, _ = core.process(psum, membrane.copy(), layer)
        assert with_res.spike_count > without.spike_count

    def test_no_bn_passthrough(self):
        core = AggregationCore()
        layer = make_layer()  # g_int None
        psum = np.full((3, 4, 4), 2000, np.int64)
        membrane = np.zeros_like(psum)
        result, _ = core.process(psum, membrane, layer)
        assert result.spikes.all()

    def test_cycles_scale_with_neurons(self):
        core = AggregationCore()
        assert core.cycles_for(16) == 1
        assert core.cycles_for(17) == 2
        assert core.cycles_for(64 * 16) == 64
