"""Dataset, loader and encoding tests."""

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticCIFAR, direct_encode, rate_encode, train_test_split


class TestSyntheticCIFAR:
    def test_shapes_and_dtypes(self):
        ds = SyntheticCIFAR(num_train=50, num_test=20, seed=0)
        assert ds.train_x.shape == (50, 3, 32, 32)
        assert ds.test_x.shape == (20, 3, 32, 32)
        assert ds.train_x.dtype == np.float32
        assert ds.train_y.dtype == np.int64

    def test_deterministic_by_seed(self):
        a = SyntheticCIFAR(num_train=30, num_test=10, seed=5)
        b = SyntheticCIFAR(num_train=30, num_test=10, seed=5)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.test_y, b.test_y)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR(num_train=30, num_test=10, seed=1)
        b = SyntheticCIFAR(num_train=30, num_test=10, seed=2)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_all_classes_present(self):
        ds = SyntheticCIFAR(num_train=500, num_test=100, seed=0)
        assert set(np.unique(ds.train_y)) == set(range(10))

    def test_class_structure_learnable(self):
        # Nearest-prototype classifier should beat chance by a wide margin.
        ds = SyntheticCIFAR(num_train=200, num_test=200, noise=0.3, seed=0)
        protos = np.stack(
            [ds.train_x[ds.train_y == k].mean(axis=0) for k in range(10)]
        )
        dists = ((ds.test_x[:, None] - protos[None]) ** 2).sum(axis=(2, 3, 4))
        acc = (dists.argmin(axis=1) == ds.test_y).mean()
        assert acc > 0.5

    def test_noise_increases_difficulty(self):
        def proto_acc(noise):
            ds = SyntheticCIFAR(num_train=300, num_test=200, noise=noise, seed=0)
            protos = np.stack(
                [ds.train_x[ds.train_y == k].mean(axis=0) for k in range(10)]
            )
            dists = ((ds.test_x[:, None] - protos[None]) ** 2).sum(axis=(2, 3, 4))
            return (dists.argmin(axis=1) == ds.test_y).mean()

        assert proto_acc(0.1) >= proto_acc(2.5)

    def test_splits(self):
        ds = SyntheticCIFAR(num_train=10, num_test=5)
        x, y = ds.train_split()
        assert len(x) == len(y) == 10


class TestTrainTestSplit:
    def test_partition_sizes(self):
        x = np.arange(100)[:, None]
        y = np.arange(100)
        tx, ty, vx, vy = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert len(tx) == 75 and len(vx) == 25
        assert set(tx.ravel()) | set(vx.ravel()) == set(range(100))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)


class TestDataLoader:
    def test_batches_cover_everything(self):
        x = np.arange(10)[:, None].astype(np.float32)
        y = np.arange(10)
        loader = DataLoader(x, y, batch_size=3, shuffle=False)
        seen = np.concatenate([yb for _, yb in loader])
        assert sorted(seen.tolist()) == list(range(10))
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(np.zeros((10, 1)), np.zeros(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(1 for _ in loader) == 3

    def test_shuffle_changes_order(self):
        x = np.arange(32)[:, None]
        y = np.arange(32)
        loader = DataLoader(x, y, batch_size=32, shuffle=True, rng=np.random.default_rng(0))
        (x1, _), = list(loader)
        assert not np.array_equal(x1.ravel(), np.arange(32))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1)), np.zeros(4))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1)), np.zeros(3), batch_size=0)


class TestEncodings:
    def test_direct_encode_repeats(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32)
        enc = direct_encode(x, 5)
        assert enc.shape == (5, 2, 3, 4, 4)
        assert np.array_equal(enc[0], enc[4])

    def test_direct_encode_bad_timesteps(self):
        with pytest.raises(ValueError):
            direct_encode(np.zeros((1, 1, 2, 2)), 0)

    def test_rate_encode_binary(self):
        x = np.random.default_rng(0).random((2, 3, 8, 8)).astype(np.float32)
        spikes = rate_encode(x, 16, rng=np.random.default_rng(1))
        assert spikes.dtype == np.uint8
        assert set(np.unique(spikes)).issubset({0, 1})

    def test_rate_encode_rate_tracks_intensity(self):
        x = np.array([0.0, 0.5, 1.0], np.float32)
        spikes = rate_encode(x, 2000, rng=np.random.default_rng(2))
        rates = spikes.mean(axis=0)
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(0.5, abs=0.05)
        assert rates[2] == pytest.approx(1.0, abs=0.01)

    def test_rate_encode_constant_input(self):
        spikes = rate_encode(np.full(5, 3.0, np.float32), 10)
        assert spikes.sum() == 0  # zero span -> zero probability
