"""Adaptive (auto) engine tests: calibration, plan caching, equivalence.

The auto engine runs the time-batched GEMM schedule while profiling a
calibration pass, then compiles a per-layer GEMM/event plan cached by
(input shape, T).  Logits must match the dense reference within float
summation-order tolerance on every model family, calibration must not
repeat for a cached key, and the per-layer profile (wall clock,
density, chosen backend) must be populated for downstream consumers
(``profile_table`` / BENCH_engines.json).
"""

import numpy as np
import pytest

from repro.snn import AutoEngine, SpikingNetwork, make_engine
from repro.snn.engines import ExecutionPlan

from test_snn_engine import converted_pooled_toy, converted_resnet, converted_toy


def _dense_vs_auto(model_factory, x, timesteps, atol):
    dense = SpikingNetwork(model_factory(), timesteps=timesteps, engine="dense")
    auto = SpikingNetwork(model_factory(), timesteps=timesteps, engine="auto")
    ld = dense.forward(x)
    la_calibration = auto.forward(x)   # first run calibrates
    la_planned = auto.forward(x)       # second run executes the plan
    for la in (la_calibration, la_planned):
        assert np.allclose(ld, la, atol=atol)
        assert np.array_equal(ld.argmax(1), la.argmax(1))
    return dense, auto


class TestMakeAutoEngine:
    def test_names(self):
        assert isinstance(make_engine("auto"), AutoEngine)
        assert isinstance(make_engine("adaptive"), AutoEngine)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoEngine(density_threshold=0.0)
        with pytest.raises(ValueError):
            AutoEngine(margin=0.0)

    def test_profiling_cannot_be_disabled(self):
        # Calibration is the profile; the flag is forced on.
        assert AutoEngine(profile_layers=False).profile_layers is True


class TestEquivalence:
    """Auto logits match dense on every model family, both on the
    calibration run and on the planned runs that may reroute sparse
    layers through the event gather."""

    def test_if_toy(self):
        x = np.random.default_rng(50).normal(size=(6, 2, 4, 4)).astype(np.float32)
        _dense_vs_auto(lambda: converted_toy(), x, timesteps=6, atol=1e-4)

    def test_lif_toy(self):
        x = np.random.default_rng(51).normal(size=(5, 2, 4, 4)).astype(np.float32)
        _dense_vs_auto(
            lambda: converted_toy(neuron="lif"), x, timesteps=5, atol=1e-4
        )

    def test_pooled_chain(self):
        x = np.random.default_rng(52).normal(size=(4, 2, 8, 8)).astype(np.float32)
        _dense_vs_auto(lambda: converted_pooled_toy(), x, timesteps=4, atol=1e-4)

    def test_resnet_residual_graph(self):
        model = converted_resnet()
        x = np.random.default_rng(53).normal(size=(4, 3, 32, 32)).astype(np.float32)
        dense = SpikingNetwork(model, timesteps=4, engine="dense")
        ld = dense.forward(x)
        auto = SpikingNetwork(model, timesteps=4, engine="auto")
        for _ in range(2):  # calibration run, then planned run
            la = auto.forward(x)
            assert np.allclose(ld, la, atol=1e-3)
            assert np.array_equal(ld.argmax(1), la.argmax(1))
        assert auto.last_run_stats.spike_rates() == pytest.approx(
            dense.last_run_stats.spike_rates(), abs=1e-3
        )

    def test_per_step_matches_dense(self):
        x = np.random.default_rng(54).normal(size=(4, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=4, engine="dense")
        auto = SpikingNetwork(converted_toy(), timesteps=4, engine="auto")
        auto.forward_per_step(x, 5)  # calibrate the (shape, T=5) key
        steps_d = dense.forward_per_step(x, 5)
        steps_a = auto.forward_per_step(x, 5)
        assert len(steps_a) == 5
        for a, b in zip(steps_d, steps_a):
            assert np.allclose(a, b, atol=1e-4)


class TestPlanCache:
    def test_calibration_runs_once_per_key(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(60).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert engine.calibration_runs == 1
        net.forward(x)
        net.forward(x)  # same full input shape and T: same plan key
        assert engine.calibration_runs == 1

    def test_new_key_recalibrates(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(61).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        net.forward(x, timesteps=7)  # different T: a different plan
        # A different batch size moves the (T*N, ...) GEMM/gather
        # crossover, so it calibrates its own plan too.
        net.forward(x[:2])
        assert engine.calibration_runs == 3
        assert engine.plan_for(x.shape, 4) is not None
        assert engine.plan_for(x.shape, 7) is not None
        assert engine.plan_for(x[:2].shape, 4) is not None

    def test_plan_contents(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(62).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        plan = engine.plan_for(x.shape, 4)
        assert isinstance(plan, ExecutionPlan)
        assert set(plan.decisions) == {"0", "4"}  # the conv and the linear
        for decision in plan.decisions.values():
            assert decision.backend in ("gemm", "event")
            assert 0.0 <= decision.density <= 1.0
            assert decision.gemm_seconds > 0.0
        # The frame conv sees the dense constant input: never event.
        assert plan.decisions["0"].backend == "gemm"

    def test_stats_record_chosen_backends(self):
        model = converted_pooled_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(63).normal(size=(4, 2, 8, 8)).astype(np.float32)
        net.forward(x)
        net.forward(x)
        stats = net.last_run_stats
        assert stats.engine == "auto"
        for layer in stats.layers:
            if layer.kind == "neuron":
                assert layer.backend == "stepped"
            else:
                assert layer.backend in ("gemm", "event")
        table = stats.profile_table()
        assert "backend" in table
        assert "gemm" in table


class TestProfile:
    def test_layer_wall_clock_and_density_populated(self):
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="auto")
        x = np.random.default_rng(70).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stats = net.last_run_stats
        assert sum(l.wall_clock_seconds for l in stats.layers) > 0.0
        for layer in stats.layers:
            assert layer.wall_clock_seconds >= 0.0
            assert 0.0 <= layer.density <= 1.0
        # The first conv reads the dense analog frame.
        assert stats.layers[0].input_density > 0.9

    def test_profile_records_shape(self):
        net = SpikingNetwork(converted_toy(), timesteps=3, engine="auto")
        x = np.random.default_rng(71).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        records = net.last_run_stats.profile_records()
        assert [r["name"] for r in records] == ["0", "2", "4"]
        for row in records:
            assert set(row) == {
                "name", "kind", "backend", "source", "wall_clock_ms",
                "predicted_ms", "density", "synaptic_ops",
            }
            if row["kind"] in ("conv", "linear"):
                assert row["source"] in ("raced", "cost-model", "re-planned")

    def test_batched_engine_profile_can_be_disabled(self):
        from repro.snn import TimeBatchedEngine

        net = SpikingNetwork(
            converted_toy(), timesteps=3, engine=TimeBatchedEngine(profile_layers=False)
        )
        x = np.random.default_rng(72).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stats = net.last_run_stats
        assert all(l.wall_clock_seconds == 0.0 for l in stats.layers)
        assert all(l.input_size == 0 for l in stats.layers)
        # Op and spike accounting is unaffected by the profiler switch.
        assert stats.total_synaptic_ops > 0
        assert stats.spike_rates()


class TestSharding:
    def test_auto_with_thread_workers(self):
        model = converted_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(80).normal(size=(6, 2, 4, 4)).astype(np.float32)
        single = net.forward(x)
        threaded = net.forward(x, workers=2, shard_mode="thread")
        assert np.allclose(single, threaded, atol=1e-5)
        assert net.last_run_stats.shard_mode == "thread"

    def test_auto_with_fork_workers(self):
        model = converted_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(81).normal(size=(6, 2, 4, 4)).astype(np.float32)
        single = net.forward(x)
        forked = net.forward(x, workers=2, shard_mode="auto")
        assert np.allclose(single, forked, atol=1e-5)

    def test_sharded_calibration_populates_parent_plan_cache(self):
        """Plans compiled inside shard workers must survive into the
        parent engine's cache (fork children are throwaway processes),
        so the next sharded inference skips calibration."""
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(82).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=2)  # two (3, 2, 4, 4) shards
        assert engine.plan_for((3, 2, 4, 4), 4) is not None


class TestDriftGuard:
    """The plan's calibration densities are compared against every
    planned run's observed densities; drifting past the threshold drops
    the plan (one log line + RunStats flag) so the next run
    recalibrates — the ROADMAP's distribution-shift follow-up."""

    def _net(self, **kwargs):
        engine = AutoEngine(**kwargs)
        return engine, SpikingNetwork(converted_toy(), timesteps=4, engine=engine)

    def test_stable_input_keeps_plan(self):
        engine, net = self._net(drift_threshold=0.5)
        x = np.random.default_rng(90).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        net.forward(x)
        stats = net.last_run_stats
        assert stats.replan_triggered is False
        assert stats.plan_drift < 0.5
        assert engine.replans_triggered == 0
        assert engine.plan_for(x.shape, 4) is not None

    def test_distribution_shift_triggers_replan(self, caplog):
        import logging

        engine, net = self._net(drift_threshold=0.3)
        rng = np.random.default_rng(91)
        x = rng.normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)  # calibrate
        shifted = np.abs(rng.normal(size=(4, 2, 4, 4))).astype(np.float32) * 10
        with caplog.at_level(logging.INFO, logger="repro.snn.engines.auto"):
            net.forward(shifted)  # planned run on drifted densities
        stats = net.last_run_stats
        assert stats.replan_triggered is True
        assert stats.plan_drift > 0.3
        assert engine.replans_triggered == 1
        assert engine.plan_for(x.shape, 4) is None  # plan dropped
        assert any("recalibrates" in r.message for r in caplog.records)
        net.forward(shifted)  # next run recalibrates on the new regime
        assert engine.calibration_runs == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AutoEngine(drift_threshold=0.0)

    def test_tiny_absolute_deviation_never_triggers(self):
        """Near-silent layers vary hugely in *relative* terms between
        batches; the guard must ignore them or it oscillates
        calibrate/drop on every run."""
        from repro.snn.engines import LayerDecision
        from repro.snn.stats import LayerStats, RunStats

        engine = AutoEngine(drift_threshold=0.5)
        plan = ExecutionPlan(key=("dense", (1, 2, 4, 4), 4))
        plan.decisions["l"] = LayerDecision(
            name="l", backend="gemm", density=1e-6, gemm_seconds=1.0
        )
        stats = RunStats(
            batch_size=1,
            timesteps=4,
            layers=[
                LayerStats(name="l", kind="conv", input_nonzero=1, input_size=10_000)
            ],
        )
        # Observed 1e-4 vs calibrated 1e-6: relative drift ~99x but the
        # absolute deviation is far below any kernel crossover.
        assert engine._check_drift(plan.key, plan, stats) is False
        assert stats.replan_triggered is False

    def test_sharded_drift_evicts_parent_plan_and_plan_file(self, tmp_path):
        """Fork children drop plans only in their throwaway cache and
        thread siblings carry no plan_path, so the eviction must ride
        back on the EngineRun for the parent to re-drop and re-persist
        — otherwise 'next run recalibrates' silently never happens."""
        path = str(tmp_path / "plans.json")
        engine = AutoEngine(drift_threshold=0.3, plan_path=path)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(96)
        x = rng.normal(size=(6, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=2)  # calibrates per-shard (3, 2, 4, 4) plans
        assert engine.plan_for((3, 2, 4, 4), 4) is not None
        shifted = np.abs(rng.normal(size=(6, 2, 4, 4))).astype(np.float32) * 10
        net.forward(shifted, workers=2)  # drifted planned shards
        assert net.last_run_stats.replan_triggered  # merged from shards
        assert engine.plan_for((3, 2, 4, 4), 4) is None  # parent cache too
        # The persisted file lost the plan as well: a fresh process
        # must recalibrate rather than reload the drifted plan.
        reloaded = AutoEngine(plan_path=path)
        assert reloaded.plan_for((3, 2, 4, 4), 4) is None


class TestPlanPersistence:
    """ExecutionPlan JSON round-trips and AutoEngine(plan_path=...)
    persists compiled plans beside model checkpoints."""

    def test_plan_json_round_trip(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(92).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        plan = engine.plan_for(x.shape, 4)
        back = ExecutionPlan.from_json(plan.to_json())
        assert back.key == plan.key
        assert set(back.decisions) == set(plan.decisions)
        for name, decision in plan.decisions.items():
            restored = back.decisions[name]
            assert restored.backend == decision.backend
            assert restored.density == pytest.approx(decision.density)
            assert restored.gemm_seconds == pytest.approx(decision.gemm_seconds)

    def test_from_json_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            ExecutionPlan.from_json('{"format": "something-else"}')

    def test_plan_path_round_trip_across_engines(self, tmp_path):
        path = str(tmp_path / "plans.json")
        first = AutoEngine(plan_path=path)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=first)
        x = np.random.default_rng(93).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert first.calibration_runs == 1

        # A fresh process (modelled by a fresh engine) loads the plan
        # and skips calibration entirely.
        second = AutoEngine(plan_path=path)
        assert second.plan_for(x.shape, 4) is not None
        net2 = SpikingNetwork(converted_toy(), timesteps=4, engine=second)
        net2.forward(x)
        assert second.calibration_runs == 0

    def test_missing_plan_file_is_fine(self, tmp_path):
        engine = AutoEngine(plan_path=str(tmp_path / "absent.json"))
        assert len(engine._plans) == 0

    def test_save_requires_a_path(self):
        with pytest.raises(ValueError):
            AutoEngine().save_plans()

    def test_corrupt_plan_file_falls_back_to_recalibration(self, tmp_path, caplog):
        path = str(tmp_path / "plans.json")
        with open(path, "w") as handle:
            handle.write('{"format": "repro-execution-plans/v1", "plans": [{"tru')
        with caplog.at_level("WARNING", logger="repro.snn.engines.auto"):
            engine = AutoEngine(plan_path=path)
        assert len(engine._plans) == 0
        assert any("unreadable plan file" in r.getMessage() for r in caplog.records)
        # The engine still works: it calibrates and atomically rewrites
        # the bad file with a valid document.
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(94).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert engine.calibration_runs == 1
        import json as _json
        rewritten = _json.loads(open(path).read())
        assert rewritten["format"] == "repro-execution-plans/v1"
        assert rewritten["plans"]

    def test_schema_mismatched_plan_file_is_ignored(self, tmp_path, caplog):
        path = str(tmp_path / "plans.json")
        with open(path, "w") as handle:
            handle.write('{"format": "repro-execution-plans/v99", "plans": []}')
        with caplog.at_level("WARNING", logger="repro.snn.engines.auto"):
            engine = AutoEngine(plan_path=path)
        assert len(engine._plans) == 0
        assert any("does not match" in r.getMessage() for r in caplog.records)

    def test_malformed_plan_entries_are_ignored(self, tmp_path, caplog):
        path = str(tmp_path / "plans.json")
        with open(path, "w") as handle:
            handle.write(
                '{"format": "repro-execution-plans/v1", "plans": [{"bogus": 1}]}'
            )
        with caplog.at_level("WARNING", logger="repro.snn.engines.auto"):
            engine = AutoEngine(plan_path=path)
        assert len(engine._plans) == 0
        assert any("malformed plan entries" in r.getMessage() for r in caplog.records)

    def test_explicit_load_of_missing_file_still_raises(self, tmp_path):
        engine = AutoEngine()
        with pytest.raises(FileNotFoundError):
            engine.load_plans(str(tmp_path / "absent.json"))


class TestDensityBucketPlanKeys:
    """Plan keys carry a coarse input-density bucket: a plan calibrated
    on mid-density frames must not be silently reused for a very sparse
    stream of the same shape — the kernel crossover moves with density,
    and before bucketing the reuse both mis-picked backends and fought
    the drift guard (every alternation looked like distribution shift)."""

    @staticmethod
    def _stream(shape, timesteps, p, seed):
        from repro.snn.spikes import SpikeStream

        rng = np.random.default_rng(seed)
        dense = (rng.random((timesteps,) + shape) < p).astype(np.float32)
        return SpikeStream.from_dense(dense, binary=True)

    def test_bucket_function_edges(self):
        from repro.snn.engines import DENSITY_BUCKET_EDGES, density_bucket

        assert density_bucket(0.0) == 0
        assert density_bucket(1.0) == len(DENSITY_BUCKET_EDGES)
        previous = -1
        for edge in DENSITY_BUCKET_EDGES:
            below, at = density_bucket(edge * 0.99), density_bucket(edge)
            assert below == at  # the edge closes its bucket...
            assert density_bucket(edge * 1.01) == at + 1  # ...not the next
            assert at > previous
            previous = at

    def test_same_shape_different_density_get_separate_plans(self):
        from repro.snn.engines import density_bucket

        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        shape = (4, 2, 4, 4)
        sparse = self._stream(shape, 4, p=0.02, seed=70)
        dense_stream = self._stream(shape, 4, p=0.9, seed=71)
        assert density_bucket(sparse.density) != density_bucket(
            dense_stream.density
        )
        net.forward(sparse)
        net.forward(dense_stream)
        # Same (kind, shape, T) prefix, different buckets: two plans.
        assert engine.calibration_runs == 2
        for stream in (sparse, dense_stream):
            plan = engine.plan_for(
                shape, 4, kind="stream",
                density_bucket=density_bucket(stream.density),
            )
            assert plan is not None

    def test_bucketed_plans_do_not_fight_drift_guard(self):
        """Alternating sparse/dense inputs of one shape settle into two
        stable plans — no drift replans, no recalibration churn.  (The
        pre-bucket failure mode: run 2 reuses run 1's plan, the drift
        guard sees ~100% density deviation, drops the plan, and every
        alternation recalibrates forever.)"""
        engine = AutoEngine(drift_threshold=0.3)
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        shape = (4, 2, 4, 4)
        sparse = self._stream(shape, 4, p=0.02, seed=72)
        dense_stream = self._stream(shape, 4, p=0.9, seed=73)
        for _ in range(2):
            net.forward(sparse)
            net.forward(dense_stream)
        assert engine.calibration_runs == 2
        assert engine.replans_triggered == 0
        assert net.last_run_stats.replan_triggered is False

    def test_calibration_races_coo_backend(self):
        """Calibration on a sparse stream times the COO row-subset path
        alongside gemm/event, recording coo_seconds in the decision."""
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        stream = self._stream((4, 2, 4, 4), 4, p=0.02, seed=74)
        net.forward(stream)
        plan = engine.plan_for((4, 2, 4, 4), 4, kind="stream")
        raced = [
            d for d in plan.decisions.values() if d.coo_seconds is not None
        ]
        assert raced, "no synapse decision raced the COO backend"


class TestStreamPlanKeys:
    def test_stream_and_dense_inputs_calibrate_separate_plans(self):
        from repro.data import rate_encode_stream

        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        x = np.random.default_rng(94).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stream = rate_encode_stream(x, 4, rng=np.random.default_rng(95))
        net.forward(stream)
        # Same plane shape and T, but frame and event inputs present
        # very different densities: two separate plans.
        assert engine.calibration_runs == 2
        assert engine.plan_for(x.shape, 4, kind="dense") is not None
        assert engine.plan_for(x.shape, 4, kind="stream") is not None


class TestServingDensityPrior:
    """Serving-observed densities feed an EWMA prior per input kind;
    a cold plan key with no same-shape neighbour warm-starts from the
    cached plan nearest that prior (cross-shape seed), so the first
    batch of a never-seen batch size benefits from production traffic."""

    def test_ewma_update_clamps_and_snapshots(self):
        engine = AutoEngine()
        engine.observe_density_prior("dense", 0.5)
        engine.observe_density_prior("dense", 1.5)  # clamps to 1.0
        snap = engine.planner_snapshot()
        assert snap["density_priors"]["dense"] == pytest.approx(0.6)
        assert snap["prior_warm_starts"] == 0

    def test_unseen_batch_size_warm_starts_from_prior(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(80)
        x1 = rng.normal(size=(6, 2, 4, 4)).astype(np.float32)
        net.forward(x1)
        assert engine.calibration_runs == 1
        engine.observe_density_prior(
            "dense", float(np.count_nonzero(x1)) / x1.size
        )
        # A batch size this engine has never planned: no same-shape
        # neighbour exists, so the serving prior supplies the seed.
        x2 = rng.normal(size=(3, 2, 4, 4)).astype(np.float32)
        net.forward(x2)
        assert engine.calibration_runs == 2  # still calibrates...
        assert engine.prior_warm_starts == 1  # ...seeded by the prior
        assert engine.planner_snapshot()["prior_warm_starts"] == 1

    def test_cold_key_without_prior_does_not_warm_start(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        rng = np.random.default_rng(81)
        net.forward(rng.normal(size=(6, 2, 4, 4)).astype(np.float32))
        net.forward(rng.normal(size=(3, 2, 4, 4)).astype(np.float32))
        assert engine.prior_warm_starts == 0  # no serving traffic seen

    def test_same_shape_neighbor_wins_over_prior(self):
        engine = AutoEngine()
        net = SpikingNetwork(converted_toy(), timesteps=4, engine=engine)
        shape = (4, 2, 4, 4)
        sparse = TestDensityBucketPlanKeys._stream(shape, 4, p=0.02, seed=82)
        dense_stream = TestDensityBucketPlanKeys._stream(shape, 4, p=0.9, seed=83)
        net.forward(sparse)
        engine.observe_density_prior("stream", sparse.density)
        net.forward(dense_stream)
        # Same shape, different bucket: the neighbour seed applies and
        # the cross-shape prior path is never consulted.
        assert engine.calibration_runs == 2
        assert engine.prior_warm_starts == 0

    def test_engine_worker_feeds_serving_densities(self):
        from repro.snn.engines import EngineWorker

        engine = make_engine("auto").bind(converted_toy())
        worker = EngineWorker(engine, probe_shape=(2, 4, 4))
        try:
            x = np.random.default_rng(84).normal(size=(2, 2, 4, 4))
            worker.submit(x.astype(np.float32), 2).result(timeout=60)
            priors = engine.planner_snapshot()["density_priors"]
            assert "dense" in priors and 0.0 < priors["dense"] <= 1.0
        finally:
            worker.shutdown()
