"""Adaptive (auto) engine tests: calibration, plan caching, equivalence.

The auto engine runs the time-batched GEMM schedule while profiling a
calibration pass, then compiles a per-layer GEMM/event plan cached by
(input shape, T).  Logits must match the dense reference within float
summation-order tolerance on every model family, calibration must not
repeat for a cached key, and the per-layer profile (wall clock,
density, chosen backend) must be populated for downstream consumers
(``profile_table`` / BENCH_engines.json).
"""

import numpy as np
import pytest

from repro.snn import AutoEngine, SpikingNetwork, make_engine
from repro.snn.engines import ExecutionPlan

from test_snn_engine import converted_pooled_toy, converted_resnet, converted_toy


def _dense_vs_auto(model_factory, x, timesteps, atol):
    dense = SpikingNetwork(model_factory(), timesteps=timesteps, engine="dense")
    auto = SpikingNetwork(model_factory(), timesteps=timesteps, engine="auto")
    ld = dense.forward(x)
    la_calibration = auto.forward(x)   # first run calibrates
    la_planned = auto.forward(x)       # second run executes the plan
    for la in (la_calibration, la_planned):
        assert np.allclose(ld, la, atol=atol)
        assert np.array_equal(ld.argmax(1), la.argmax(1))
    return dense, auto


class TestMakeAutoEngine:
    def test_names(self):
        assert isinstance(make_engine("auto"), AutoEngine)
        assert isinstance(make_engine("adaptive"), AutoEngine)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AutoEngine(density_threshold=0.0)
        with pytest.raises(ValueError):
            AutoEngine(margin=0.0)

    def test_profiling_cannot_be_disabled(self):
        # Calibration is the profile; the flag is forced on.
        assert AutoEngine(profile_layers=False).profile_layers is True


class TestEquivalence:
    """Auto logits match dense on every model family, both on the
    calibration run and on the planned runs that may reroute sparse
    layers through the event gather."""

    def test_if_toy(self):
        x = np.random.default_rng(50).normal(size=(6, 2, 4, 4)).astype(np.float32)
        _dense_vs_auto(lambda: converted_toy(), x, timesteps=6, atol=1e-4)

    def test_lif_toy(self):
        x = np.random.default_rng(51).normal(size=(5, 2, 4, 4)).astype(np.float32)
        _dense_vs_auto(
            lambda: converted_toy(neuron="lif"), x, timesteps=5, atol=1e-4
        )

    def test_pooled_chain(self):
        x = np.random.default_rng(52).normal(size=(4, 2, 8, 8)).astype(np.float32)
        _dense_vs_auto(lambda: converted_pooled_toy(), x, timesteps=4, atol=1e-4)

    def test_resnet_residual_graph(self):
        model = converted_resnet()
        x = np.random.default_rng(53).normal(size=(4, 3, 32, 32)).astype(np.float32)
        dense = SpikingNetwork(model, timesteps=4, engine="dense")
        ld = dense.forward(x)
        auto = SpikingNetwork(model, timesteps=4, engine="auto")
        for _ in range(2):  # calibration run, then planned run
            la = auto.forward(x)
            assert np.allclose(ld, la, atol=1e-3)
            assert np.array_equal(ld.argmax(1), la.argmax(1))
        assert auto.last_run_stats.spike_rates() == pytest.approx(
            dense.last_run_stats.spike_rates(), abs=1e-3
        )

    def test_per_step_matches_dense(self):
        x = np.random.default_rng(54).normal(size=(4, 2, 4, 4)).astype(np.float32)
        dense = SpikingNetwork(converted_toy(), timesteps=4, engine="dense")
        auto = SpikingNetwork(converted_toy(), timesteps=4, engine="auto")
        auto.forward_per_step(x, 5)  # calibrate the (shape, T=5) key
        steps_d = dense.forward_per_step(x, 5)
        steps_a = auto.forward_per_step(x, 5)
        assert len(steps_a) == 5
        for a, b in zip(steps_d, steps_a):
            assert np.allclose(a, b, atol=1e-4)


class TestPlanCache:
    def test_calibration_runs_once_per_key(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(60).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        assert engine.calibration_runs == 1
        net.forward(x)
        net.forward(x)  # same full input shape and T: same plan key
        assert engine.calibration_runs == 1

    def test_new_key_recalibrates(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(61).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        net.forward(x, timesteps=7)  # different T: a different plan
        # A different batch size moves the (T*N, ...) GEMM/gather
        # crossover, so it calibrates its own plan too.
        net.forward(x[:2])
        assert engine.calibration_runs == 3
        assert engine.plan_for(x.shape, 4) is not None
        assert engine.plan_for(x.shape, 7) is not None
        assert engine.plan_for(x[:2].shape, 4) is not None

    def test_plan_contents(self):
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(62).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        plan = engine.plan_for(x.shape, 4)
        assert isinstance(plan, ExecutionPlan)
        assert set(plan.decisions) == {"0", "4"}  # the conv and the linear
        for decision in plan.decisions.values():
            assert decision.backend in ("gemm", "event")
            assert 0.0 <= decision.density <= 1.0
            assert decision.gemm_seconds > 0.0
        # The frame conv sees the dense constant input: never event.
        assert plan.decisions["0"].backend == "gemm"

    def test_stats_record_chosen_backends(self):
        model = converted_pooled_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(63).normal(size=(4, 2, 8, 8)).astype(np.float32)
        net.forward(x)
        net.forward(x)
        stats = net.last_run_stats
        assert stats.engine == "auto"
        for layer in stats.layers:
            if layer.kind == "neuron":
                assert layer.backend == "stepped"
            else:
                assert layer.backend in ("gemm", "event")
        table = stats.profile_table()
        assert "backend" in table
        assert "gemm" in table


class TestProfile:
    def test_layer_wall_clock_and_density_populated(self):
        net = SpikingNetwork(converted_toy(), timesteps=4, engine="auto")
        x = np.random.default_rng(70).normal(size=(4, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stats = net.last_run_stats
        assert sum(l.wall_clock_seconds for l in stats.layers) > 0.0
        for layer in stats.layers:
            assert layer.wall_clock_seconds >= 0.0
            assert 0.0 <= layer.density <= 1.0
        # The first conv reads the dense analog frame.
        assert stats.layers[0].input_density > 0.9

    def test_profile_records_shape(self):
        net = SpikingNetwork(converted_toy(), timesteps=3, engine="auto")
        x = np.random.default_rng(71).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        records = net.last_run_stats.profile_records()
        assert [r["name"] for r in records] == ["0", "2", "4"]
        for row in records:
            assert set(row) == {
                "name", "kind", "backend", "wall_clock_ms", "density", "synaptic_ops",
            }

    def test_batched_engine_profile_can_be_disabled(self):
        from repro.snn import TimeBatchedEngine

        net = SpikingNetwork(
            converted_toy(), timesteps=3, engine=TimeBatchedEngine(profile_layers=False)
        )
        x = np.random.default_rng(72).normal(size=(2, 2, 4, 4)).astype(np.float32)
        net.forward(x)
        stats = net.last_run_stats
        assert all(l.wall_clock_seconds == 0.0 for l in stats.layers)
        assert all(l.input_size == 0 for l in stats.layers)
        # Op and spike accounting is unaffected by the profiler switch.
        assert stats.total_synaptic_ops > 0
        assert stats.spike_rates()


class TestSharding:
    def test_auto_with_thread_workers(self):
        model = converted_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(80).normal(size=(6, 2, 4, 4)).astype(np.float32)
        single = net.forward(x)
        threaded = net.forward(x, workers=2, shard_mode="thread")
        assert np.allclose(single, threaded, atol=1e-5)
        assert net.last_run_stats.shard_mode == "thread"

    def test_auto_with_fork_workers(self):
        model = converted_toy()
        net = SpikingNetwork(model, timesteps=4, engine="auto")
        x = np.random.default_rng(81).normal(size=(6, 2, 4, 4)).astype(np.float32)
        single = net.forward(x)
        forked = net.forward(x, workers=2, shard_mode="auto")
        assert np.allclose(single, forked, atol=1e-5)

    def test_sharded_calibration_populates_parent_plan_cache(self):
        """Plans compiled inside shard workers must survive into the
        parent engine's cache (fork children are throwaway processes),
        so the next sharded inference skips calibration."""
        model = converted_toy()
        engine = AutoEngine()
        net = SpikingNetwork(model, timesteps=4, engine=engine)
        x = np.random.default_rng(82).normal(size=(6, 2, 4, 4)).astype(np.float32)
        net.forward(x, workers=2)  # two (3, 2, 4, 4) shards
        assert engine.plan_for((3, 2, 4, 4), 4) is not None
