"""Spiking-core tests: functional correctness and cycle accounting."""

import numpy as np
import pytest

from repro.hw.config import PYNQ_Z2
from repro.hw.core import SpikingCore
from repro.hw.pe import ProcessingElement


def reference_conv(spikes, weights, stride=1, padding=0):
    """Integer conv reference via float conv on small arrays."""
    from repro.tensor import Tensor
    from repro.tensor.functional import conv2d

    out = conv2d(
        Tensor(spikes[None].astype(np.float32)),
        Tensor(weights.astype(np.float32)),
        stride=stride,
        padding=padding,
    )
    return np.round(out.data[0]).astype(np.int64)


class TestConvFunctional:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        spikes = (rng.random((4, 8, 8)) < 0.3).astype(np.int64)
        weights = rng.integers(-128, 128, size=(6, 4, 3, 3))
        core = SpikingCore()
        psum, _ = core.conv_timestep(spikes, weights, stride=1, padding=1)
        ref = reference_conv(spikes, weights, 1, 1)
        assert np.array_equal(psum, ref)

    def test_batched_matches_loop(self):
        rng = np.random.default_rng(1)
        spikes = (rng.random((3, 2, 6, 6)) < 0.4).astype(np.int64)
        weights = rng.integers(-20, 20, size=(4, 2, 3, 3))
        core = SpikingCore()
        batched, _ = core.conv_timestep(spikes, weights, padding=1)
        for i in range(3):
            single, _ = core.conv_timestep(spikes[i], weights, padding=1)
            assert np.array_equal(batched[i], single)

    def test_saturation_applied(self):
        spikes = np.ones((1, 3, 3), np.int64)
        weights = np.full((1, 1, 3, 3), 127, np.int64)
        # 9 taps x 127 = 1143, fits; chain many channels to overflow.
        spikes_many = np.ones((64, 3, 3), np.int64)
        weights_many = np.full((1, 64, 3, 3), 127, np.int64)
        core = SpikingCore()
        psum, _ = core.conv_timestep(spikes_many, weights_many)
        assert psum.max() == 32767

    def test_rejects_non_binary(self):
        core = SpikingCore()
        with pytest.raises(ValueError):
            core.conv_timestep(np.full((1, 4, 4), 2, np.int64), np.ones((1, 1, 3, 3), np.int64))

    def test_rejects_wide_weights(self):
        core = SpikingCore()
        with pytest.raises(ValueError):
            core.conv_timestep(
                np.ones((1, 4, 4), np.int64), np.full((1, 1, 3, 3), 300, np.int64)
            )

    def test_rejects_channel_mismatch(self):
        core = SpikingCore()
        with pytest.raises(ValueError):
            core.conv_timestep(np.ones((2, 4, 4), np.int64), np.ones((1, 3, 3, 3), np.int64))


class TestConvCycles:
    def test_dense_cycle_count_formula(self):
        # 4x4 input, 3x3 kernel, no padding -> 2x2 output, 1 in-channel.
        spikes = np.ones((1, 4, 4), np.int64)
        weights = np.ones((1, 1, 3, 3), np.int64)
        core = SpikingCore(event_driven=False)
        _, stats = core.conv_timestep(spikes, weights)
        # 4 pixels x (3 rows + 1 finalize) = 16 cycles.
        assert stats.cycles == 16
        assert stats.finalize_cycles == 4

    def test_event_driven_cheaper_on_sparse(self):
        rng = np.random.default_rng(0)
        spikes = (rng.random((2, 8, 8)) < 0.05).astype(np.int64)
        weights = rng.integers(-5, 5, size=(3, 2, 3, 3))
        dense = SpikingCore(event_driven=False)
        sparse = SpikingCore(event_driven=True)
        _, d = dense.conv_timestep(spikes, weights, padding=1)
        _, s = sparse.conv_timestep(spikes, weights, padding=1)
        assert s.cycles < d.cycles
        assert s.finalize_cycles == d.finalize_cycles

    def test_all_zero_spikes_only_finalize(self):
        core = SpikingCore(event_driven=True)
        spikes = np.zeros((1, 4, 4), np.int64)
        _, stats = core.conv_timestep(spikes, np.ones((1, 1, 3, 3), np.int64))
        assert stats.row_cycles == 0
        assert stats.cycles == stats.finalize_cycles

    def test_channel_groups_scale_cycles(self):
        spikes = np.ones((1, 6, 6), np.int64)
        w64 = np.ones((64, 1, 3, 3), np.int64)
        w65 = np.ones((65, 1, 3, 3), np.int64)
        core = SpikingCore()
        _, s64 = core.conv_timestep(spikes, w64)
        _, s65 = core.conv_timestep(spikes, w65)
        assert s64.channel_groups == 1
        assert s65.channel_groups == 2
        assert s65.cycles == 2 * s64.cycles

    def test_segment_activity_fraction(self):
        spikes = np.zeros((1, 4, 4), np.int64)
        spikes[0, 0, 0] = 1
        core = SpikingCore()
        _, stats = core.conv_timestep(spikes, np.ones((1, 1, 3, 3), np.int64))
        assert 0.0 < stats.segment_activity < 1.0

    def test_wide_kernel_segments(self):
        # 5-wide rows need two 3-tap segments per row.
        spikes = np.ones((1, 5, 5), np.int64)
        weights = np.ones((1, 1, 5, 5), np.int64)
        core = SpikingCore(event_driven=False)
        _, stats = core.conv_timestep(spikes, weights)
        # 1 pixel x 5 rows x 2 segments + 1 finalize.
        assert stats.cycles == 11 == PYNQ_Z2.kernel_cycles(5)

    def test_cycle_model_matches_bit_true_pe(self):
        """Vectorised core accounting == explicit PE simulation."""
        rng = np.random.default_rng(3)
        spikes = (rng.random((2, 5, 5)) < 0.4).astype(np.int64)
        weights = rng.integers(-10, 10, size=(1, 2, 3, 3))
        core = SpikingCore(event_driven=True)
        psum, stats = core.conv_timestep(spikes, weights)

        pe_cycles = 0
        pe = ProcessingElement(event_driven=True)
        oh = ow = 3
        for i in range(oh):
            for j in range(ow):
                pe.reset()
                total = 0
                for c in range(2):
                    window = spikes[c, i : i + 3, j : j + 3]
                    _, cyc = pe.compute_kernel(window, weights[0, c])
                    total += cyc
                pe_cycles += total
                assert pe.psum == psum[0, i, j]
        assert stats.cycles == pe_cycles


class TestFcPath:
    def test_matches_matmul(self):
        rng = np.random.default_rng(0)
        spikes = (rng.random(20) < 0.5).astype(np.int64)
        weights = rng.integers(-50, 50, size=(7, 20))
        core = SpikingCore()
        psum, _ = core.fc_timestep(spikes, weights)
        assert np.array_equal(psum, weights @ spikes)

    def test_batched(self):
        rng = np.random.default_rng(1)
        spikes = (rng.random((4, 12)) < 0.5).astype(np.int64)
        weights = rng.integers(-5, 5, size=(3, 12))
        core = SpikingCore()
        psum, _ = core.fc_timestep(spikes, weights)
        assert psum.shape == (4, 3)
        assert np.array_equal(psum, spikes @ weights.T)

    def test_event_driven_segment_cycles(self):
        spikes = np.zeros(12, np.int64)
        spikes[0] = 1  # one active 3-tap segment out of 4
        core = SpikingCore(event_driven=True)
        _, stats = core.fc_timestep(spikes, np.ones((2, 12), np.int64))
        assert stats.row_cycles == 1
        dense = SpikingCore(event_driven=False)
        _, d = dense.fc_timestep(spikes, np.ones((2, 12), np.int64))
        assert d.row_cycles == 4

    def test_feature_mismatch(self):
        core = SpikingCore()
        with pytest.raises(ValueError):
            core.fc_timestep(np.ones(5, np.int64), np.ones((2, 6), np.int64))
