"""Power model and 40 nm ASIC projection tests."""

import pytest

from repro.hw.asic import AsicProjection
from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.power import PowerModel


class TestPowerModel:
    def test_full_activity_matches_paper(self):
        # Calibrated: 1.54 W total board power at full activity.
        assert PowerModel().total_watts(activity=1.0) == pytest.approx(1.54, abs=0.01)

    def test_activity_reduces_dynamic_power(self):
        pm = PowerModel()
        assert pm.total_watts(0.1) < pm.total_watts(0.9)

    def test_ps_dominates(self):
        pm = PowerModel()
        assert pm.constants.ps_watts > pm.pl_watts(1.0)

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            PowerModel().total_watts(activity=1.5)

    def test_energy_per_inference(self):
        pm = PowerModel()
        joules = pm.energy_per_inference_joules(latency_seconds=0.01, activity=0.3)
        assert joules == pytest.approx(pm.total_watts(0.3) * 0.01)

    def test_clock_scaling(self):
        pm = PowerModel()
        fast = pm.total_watts(1.0, clock_hz=200e6)
        slow = pm.total_watts(1.0, clock_hz=100e6)
        assert fast > slow


class TestAsicProjection:
    def test_paper_numbers(self):
        report = AsicProjection().report()
        assert report.gops == pytest.approx(192.0)
        assert report.area_mm2 == pytest.approx(11.0, abs=0.3)
        assert report.power_watts == pytest.approx(2.17, abs=0.05)

    def test_gops_is_pure_arithmetic(self):
        # 64 PE x 6 ops x 500 MHz.
        report = AsicProjection(clock_hz=500e6).report()
        assert report.gops == 64 * 6 * 0.5

    def test_derived_metrics(self):
        report = AsicProjection().report()
        assert report.gops_per_watt == pytest.approx(192 / 2.169, rel=0.02)
        assert report.gops_per_mm2 > 0

    def test_clock_scales_throughput_and_power(self):
        slow = AsicProjection(clock_hz=250e6).report()
        fast = AsicProjection(clock_hz=500e6).report()
        assert fast.gops == pytest.approx(2 * slow.gops)
        assert fast.power_watts > slow.power_watts

    def test_activity_scales_power(self):
        proj = AsicProjection()
        assert proj.report(activity=0.2).power_watts < proj.report(activity=1.0).power_watts
        with pytest.raises(ValueError):
            proj.report(activity=2.0)

    def test_bigger_array_bigger_area(self):
        big = AsicProjection(ArchConfig(pe_rows=16, pe_cols=16))
        assert big.report().area_mm2 > AsicProjection().report().area_mm2
