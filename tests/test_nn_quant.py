"""Quantisation layer tests: QuantReLU, INT8 weight quantisers, calibration."""

import numpy as np
import pytest

from repro import nn
from repro.nn.quant import dequantize_weight, quantize_weight_int8
from repro.tensor import Tensor


class TestQuantReLU:
    def test_qcfs_values_l2(self):
        q = nn.QuantReLU(levels=2, init_step=2.0)
        x = Tensor(np.array([-1.0, 0.2, 0.6, 1.2, 1.8, 5.0], np.float32))
        out = q(x).data
        # h(x) = (s/L) * clip(floor(x*L/s + 0.5), 0, L), s=2, L=2
        assert np.allclose(out, [0.0, 0.0, 1.0, 1.0, 2.0, 2.0])

    def test_levels_count(self):
        q = nn.QuantReLU(levels=4, init_step=4.0)
        x = Tensor(np.linspace(-1, 6, 200).astype(np.float32))
        values = np.unique(q(x).data)
        assert len(values) == 5  # 0..L inclusive
        assert np.allclose(values, [0, 1, 2, 3, 4])

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            nn.QuantReLU(levels=0)

    def test_threshold_property(self):
        q = nn.QuantReLU(levels=2, init_step=3.5)
        assert q.threshold == pytest.approx(3.5)

    def test_gradient_to_input_inside_range(self):
        q = nn.QuantReLU(levels=2, init_step=2.0)
        x = Tensor(np.array([0.7], np.float32), requires_grad=True)
        q(x).sum().backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_gradient_to_input_clipped(self):
        q = nn.QuantReLU(levels=2, init_step=2.0)
        x = Tensor(np.array([-3.0, 10.0], np.float32), requires_grad=True)
        q(x).sum().backward()
        assert np.allclose(x.grad, 0.0)

    def test_step_receives_gradient(self):
        q = nn.QuantReLU(levels=2, init_step=2.0)
        x = Tensor(np.array([5.0, 0.7], np.float32))
        q(x).sum().backward()
        assert q.step.grad is not None
        assert abs(float(q.step.grad)) > 0

    def test_step_is_learnable_parameter(self):
        q = nn.QuantReLU(levels=2)
        assert "step" in dict(q.named_parameters())

    def test_calibration_sets_percentile(self):
        q = nn.QuantReLU(levels=2, init_step=99.0)
        q.begin_calibration()
        x = Tensor(np.linspace(0, 1, 1001).astype(np.float32))
        out = q(x)
        # Calibration mode acts as a plain ReLU.
        assert np.allclose(out.data, np.maximum(x.data, 0))
        q.end_calibration(percentile=90.0)
        assert float(q.step.data) == pytest.approx(0.9, abs=0.01)

    def test_calibration_ignores_negatives(self):
        q = nn.QuantReLU(levels=2)
        q.begin_calibration()
        q(Tensor(np.array([-5.0, -1.0, 0.5, 1.0], np.float32)))
        q.end_calibration(percentile=100.0)
        assert float(q.step.data) == pytest.approx(1.0, abs=1e-5)

    def test_calibration_empty_keeps_floor(self):
        q = nn.QuantReLU(levels=2, init_step=3.0)
        q.begin_calibration()
        q(Tensor(np.array([-1.0, -2.0], np.float32)))
        q.end_calibration()
        assert float(q.step.data) >= 0.0099


class TestWeightQuantization:
    def test_roundtrip_error_bound(self):
        rng = np.random.default_rng(0)
        w = rng.normal(0, 0.1, size=(8, 4, 3, 3)).astype(np.float32)
        w_int, scale = quantize_weight_int8(w)
        back = dequantize_weight(w_int, scale)
        assert np.abs(back - w).max() <= scale / 2 + 1e-7

    def test_range_respected(self):
        w = np.array([-10.0, 10.0], np.float32)
        w_int, scale = quantize_weight_int8(w)
        assert w_int.min() >= -128 and w_int.max() <= 127

    def test_explicit_scale(self):
        w = np.array([0.5, -0.25], np.float32)
        w_int, scale = quantize_weight_int8(w, scale=0.25)
        assert scale == 0.25
        assert w_int.tolist() == [2, -1]

    def test_zero_weights(self):
        w_int, scale = quantize_weight_int8(np.zeros(4, np.float32))
        assert np.all(w_int == 0)
        assert scale > 0

    def test_lower_bitwidths(self):
        w = np.linspace(-1, 1, 100).astype(np.float32)
        w_int, scale = quantize_weight_int8(w, bits=4)
        assert w_int.min() >= -8 and w_int.max() <= 7


class TestQuantConv2d:
    def test_forward_close_to_float(self):
        rng = np.random.default_rng(0)
        conv = nn.QuantConv2d(3, 8, 3, padding=1, bias=False, rng=rng)
        ref = nn.Conv2d(3, 8, 3, padding=1, bias=False, rng=np.random.default_rng(0))
        ref.weight.data = conv.weight.data.copy()
        x = Tensor(rng.normal(size=(2, 3, 6, 6)).astype(np.float32))
        out_q = conv(x).data
        out_f = ref(x).data
        # Fake-quantised output within a few weight-LSBs of float.
        scale = float(conv.weight_scale.data)
        assert np.abs(out_q - out_f).max() < scale * 27

    def test_integer_weights_in_range(self):
        conv = nn.QuantConv2d(2, 4, 3, rng=np.random.default_rng(1))
        w_int, scale = conv.integer_weights()
        assert w_int.dtype == np.int32
        assert w_int.min() >= -128 and w_int.max() <= 127
        assert scale > 0

    def test_weight_scale_gets_gradient(self):
        conv = nn.QuantConv2d(1, 2, 3, bias=False, rng=np.random.default_rng(2))
        x = Tensor(np.ones((1, 1, 5, 5), np.float32))
        conv(x).sum().backward()
        assert conv.weight_scale.grad is not None


class TestQuantLinear:
    def test_forward_and_integer_weights(self):
        lin = nn.QuantLinear(8, 4, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 8), np.float32))
        out = lin(x)
        assert out.shape == (2, 4)
        w_int, scale = lin.integer_weights()
        assert np.allclose(w_int * scale, lin.weight.data, atol=scale)
