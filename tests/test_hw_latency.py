"""Latency-model tests against the paper's Tables I and II."""

import numpy as np
import pytest

from repro.eval import table1_experiment, table2_experiment
from repro.hw.config import LayerConfig, LayerKind, PYNQ_Z2
from repro.hw.latency import ArchitecturalLatencyModel, LatencyModel


def conv_cfg(cin, cout, hw, k=3, **kw):
    return LayerConfig(
        kind=LayerKind.CONV,
        in_channels=cin,
        out_channels=cout,
        in_height=hw,
        in_width=hw,
        kernel_size=k,
        padding=k // 2,
        **kw,
    )


# Paper Table I targets (per-group latency in ms).
PAPER_TABLE1_RESNET = {
    ("Conv (3x3,64)", "32x32"): 4.73,
    ("Conv (3x3,128)", "16x16"): 3.58,
    ("Conv (3x3,256)", "8x8"): 3.58,
    ("Conv (3x3,512)", "4x4"): 3.57,
    ("FC (512)", "512x10"): 58.929,
}
PAPER_TABLE1_VGG = {
    ("Conv (3x3,64)", "32x32"): 0.94,
    ("Conv (3x3,128)", "16x16"): 0.89,
    ("Conv (3x3,256)", "8x8"): 2.68,
    ("Conv (3x3,512)", "4x4"): 2.67,
    ("FC (512)", "512x10"): 58.72,
}
# Paper Table II targets.
PAPER_TABLE2 = {3: 0.9479, 5: 0.95, 7: 0.9677, 11: 0.9839}


class TestTable1:
    @pytest.fixture(scope="class")
    def results(self):
        return table1_experiment(timesteps=8, spike_rate=0.12)

    def test_resnet_rows_within_tolerance(self, results):
        rows = {(r["label"], r["output_size"]): r["latency_ms"] for r in results["resnet18"]}
        for key, paper_ms in PAPER_TABLE1_RESNET.items():
            assert key in rows, f"missing row {key}"
            assert rows[key] == pytest.approx(paper_ms, rel=0.25), key

    def test_vgg_conv_rows_same_order_of_magnitude(self, results):
        rows = {(r["label"], r["output_size"]): r["latency_ms"] for r in results["vgg11"]}
        for key, paper_ms in PAPER_TABLE1_VGG.items():
            if key not in rows:
                continue
            assert rows[key] == pytest.approx(paper_ms, rel=0.6), key

    def test_fc_dominates_conv(self, results):
        for net in ("resnet18", "vgg11"):
            rows = results[net]
            fc = [r for r in rows if r["label"].startswith("FC")][0]
            convs = [r for r in rows if r["label"].startswith("Conv")]
            per_layer_conv = max(r["latency_ms"] / r["count"] for r in convs)
            # Paper headline: FC ~60x slower than any conv layer.
            assert fc["latency_ms"] > 20 * per_layer_conv

    def test_resnet_stage_latencies_nearly_equal(self, results):
        # The paper's striking observation: equal-MAC stages cost the same.
        rows = [r for r in results["resnet18"] if r["label"].startswith("Conv")]
        per_layer = [r["latency_ms"] / r["count"] for r in rows]
        assert max(per_layer) / min(per_layer) < 1.2


class TestTable2:
    def test_kernel_sweep_values(self):
        rows = {r["kernel_cycles"]: r for r in []}
        for row in table2_experiment():
            k = int(row["layer"].split("(")[1].split("x")[0])
            assert row["latency_ms"] == pytest.approx(PAPER_TABLE2[k], rel=0.05)

    def test_latency_increases_weakly_with_kernel(self):
        rows = table2_experiment()
        latencies = [r["latency_ms"] for r in rows]
        assert latencies == sorted(latencies)
        # Transfer/driver-bound: 11x11 costs < 10% more than 3x3
        # despite ~13x the MACs (the paper's reconfigurability claim).
        assert latencies[-1] / latencies[0] < 1.10

    def test_kernel_cycles_column(self):
        rows = table2_experiment()
        assert [r["kernel_cycles"] for r in rows] == [4, 11, 22, 45]


class TestArchitecturalModel:
    def test_event_driven_scales_with_rate(self):
        model = ArchitecturalLatencyModel()
        cfg = conv_cfg(64, 64, 32)
        low = model.conv_cycles(cfg, 8, spike_rate=0.05)
        high = model.conv_cycles(cfg, 8, spike_rate=0.5)
        assert high > low

    def test_dense_ignores_rate(self):
        model = ArchitecturalLatencyModel(event_driven=False)
        cfg = conv_cfg(64, 64, 32)
        assert model.conv_cycles(cfg, 8, 0.05) == model.conv_cycles(cfg, 8, 0.5)

    def test_cycles_scale_with_timesteps(self):
        model = ArchitecturalLatencyModel()
        cfg = conv_cfg(16, 16, 16)
        assert model.conv_cycles(cfg, 16, 0.1) == 2 * model.conv_cycles(cfg, 8, 0.1)

    def test_channel_groups(self):
        model = ArchitecturalLatencyModel()
        small = conv_cfg(16, 64, 8)
        large = conv_cfg(16, 128, 8)
        # 128 out-channels -> 2 sequential groups of 64.
        ratio = model.conv_cycles(large, 8, 0.1) / model.conv_cycles(small, 8, 0.1)
        assert 1.8 < ratio < 2.2

    def test_fc_cycles(self):
        model = ArchitecturalLatencyModel()
        cfg = LayerConfig(
            kind=LayerKind.FC, in_channels=512, out_channels=10,
            in_height=1, in_width=1, kernel_size=1,
        )
        cycles = model.fc_cycles(cfg, 8, 0.12)
        assert cycles > 0

    def test_seconds_conversion(self):
        model = ArchitecturalLatencyModel()
        cfg = conv_cfg(8, 8, 8)
        cycles = model.layer_cycles(cfg, 8, 0.1)
        assert model.layer_seconds(cfg, 8, 0.1) == pytest.approx(cycles / 100e6)


class TestLatencyBreakdown:
    def test_components_sum(self):
        model = LatencyModel()
        cfg = conv_cfg(64, 64, 32)
        lat = model.layer_latency(cfg, timesteps=8)
        assert lat.seconds == pytest.approx(
            lat.invoke_seconds + lat.mmio_seconds + lat.exposed_compute_seconds
        )
        assert lat.overlapped_stream_seconds > 0

    def test_conv_has_no_mmio(self):
        model = LatencyModel()
        lat = model.layer_latency(conv_cfg(8, 8, 8), timesteps=8)
        assert lat.mmio_seconds == 0.0

    def test_network_latency_list(self):
        model = LatencyModel()
        cfgs = [conv_cfg(3, 16, 32), conv_cfg(16, 16, 32)]
        lats = model.network_latency(cfgs, timesteps=4)
        assert len(lats) == 2
        assert all(l.seconds > 0 for l in lats)
