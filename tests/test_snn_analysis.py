"""Conversion-error analysis tests."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.pipeline import build_quantized_twin
from repro.pipeline.conversion import calibrate_quant_steps
from repro.pipeline.trainer import TrainConfig, Trainer
from repro.snn import (
    SpikingNetwork,
    conversion_error_curve,
    convert_to_snn,
    layerwise_rate_error,
    threshold_sweep,
)


@pytest.fixture(scope="module")
def twins():
    """(quant ANN, converted SNN twin, dataset) with shared weights."""
    ds = SyntheticCIFAR(num_train=300, num_test=120, noise=0.7, seed=13)
    quant = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    calibrate_quant_steps(quant, ds.train_x[:128])
    Trainer(quant, TrainConfig(epochs=2, lr=1e-3)).fit(ds.train_x, ds.train_y)
    snn_twin = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    snn_twin.load_state_dict(quant.state_dict())
    convert_to_snn(snn_twin)
    return quant, snn_twin, ds


class TestLayerwiseRateError:
    def test_reports_all_layers(self, twins):
        quant, snn, ds = twins
        errors = layerwise_rate_error(quant, snn, ds.test_x[:16], timesteps=8)
        assert len(errors) == 8
        assert all(e.relative_error >= 0 for e in errors)

    def test_first_layer_exact_at_t_equals_l(self, twins):
        # QCFS equivalence: with T = L (= 2 here) and constant input,
        # the first spiking layer reproduces its quantised ReLU exactly;
        # deeper layers see time-varying inputs and accumulate error.
        quant, snn, ds = twins
        errors = layerwise_rate_error(quant, snn, ds.test_x[:16], timesteps=2)
        assert errors[0].relative_error < 1e-5
        assert errors[-1].relative_error > errors[0].relative_error

    def test_error_converges_for_large_t(self, twins):
        # Beyond T ~ L the SNN approximates the *analog* clipped ReLU,
        # so its distance to the L=2 quant reference stabilises (it
        # must not diverge with more timesteps).
        quant, snn, ds = twins
        t8 = layerwise_rate_error(quant, snn, ds.test_x[:16], timesteps=8)
        t32 = layerwise_rate_error(quant, snn, ds.test_x[:16], timesteps=32)
        assert np.mean([e.relative_error for e in t32]) <= np.mean(
            [e.relative_error for e in t8]
        ) + 0.05

    def test_rate_means_tracked(self, twins):
        quant, snn, ds = twins
        errors = layerwise_rate_error(quant, snn, ds.test_x[:16], timesteps=8)
        for e in errors:
            assert e.ann_mean_activation >= 0
            assert e.snn_mean_rate_output >= 0

    def test_hooks_are_restored(self, twins):
        quant, snn, ds = twins
        layerwise_rate_error(quant, snn, ds.test_x[:4], timesteps=2)
        # Running again must produce identical results (no hook leakage).
        a = layerwise_rate_error(quant, snn, ds.test_x[:4], timesteps=2)
        b = layerwise_rate_error(quant, snn, ds.test_x[:4], timesteps=2)
        assert [x.relative_error for x in a] == [x.relative_error for x in b]


class TestConversionErrorCurve:
    def test_curve_decreases(self, twins):
        quant, snn, ds = twins
        network = SpikingNetwork(snn, timesteps=8)
        curve = conversion_error_curve(
            quant, network, ds.test_x[:16], timesteps=(1, 2, 8, 32)
        )
        assert curve[32] < curve[1]
        assert set(curve) == {1, 2, 8, 32}

    def test_error_nonnegative(self, twins):
        quant, snn, ds = twins
        network = SpikingNetwork(snn, timesteps=8)
        curve = conversion_error_curve(quant, network, ds.test_x[:8], timesteps=(1, 4))
        assert all(v >= 0 for v in curve.values())


class TestThresholdSweep:
    def test_learned_threshold_is_best_region(self, twins):
        _, snn, ds = twins
        network = SpikingNetwork(snn, timesteps=8)
        results = threshold_sweep(
            network, ds.test_x[:80], ds.test_y[:80], scales=(0.25, 1.0, 4.0)
        )
        # Accuracy at the learned threshold beats wild mis-scalings.
        assert results[1.0] >= results[0.25] - 0.05
        assert results[1.0] >= results[4.0] - 0.05

    def test_thresholds_restored(self, twins):
        _, snn, ds = twins
        from repro.snn import spiking_layers

        network = SpikingNetwork(snn, timesteps=4)
        before = [l.threshold for l in spiking_layers(snn)]
        threshold_sweep(network, ds.test_x[:16], ds.test_y[:16], scales=(0.5, 2.0))
        after = [l.threshold for l in spiking_layers(snn)]
        assert before == after
