"""Surrogate-gradient training tests (the paper's direct-training baseline)."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.snn.surrogate import (
    SurrogateIFLayer,
    SurrogateSNN,
    _surrogate_derivative,
    evaluate_surrogate_snn,
    spike_with_surrogate,
    train_surrogate_snn,
)
from repro.tensor import Tensor


class TestSurrogateDerivatives:
    @pytest.mark.parametrize("kind", ["rectangle", "fast_sigmoid", "triangle"])
    def test_peak_at_threshold(self, kind):
        xs = np.linspace(-3, 3, 301).astype(np.float32)
        d = _surrogate_derivative(kind, xs, width=1.0)
        assert d[150] == d.max()  # maximal at v == threshold
        assert (d >= 0).all()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            _surrogate_derivative("step", np.zeros(1), 1.0)

    def test_width_spreads_support(self):
        xs = np.linspace(-3, 3, 301).astype(np.float32)
        narrow = _surrogate_derivative("triangle", xs, 0.5)
        wide = _surrogate_derivative("triangle", xs, 2.0)
        assert (narrow > 0).sum() < (wide > 0).sum()


class TestSpikeWithSurrogate:
    def test_forward_is_heaviside(self):
        v = Tensor(np.array([-0.5, 0.0, 0.5], np.float32))
        theta = Parameter(np.float32(0.0), requires_grad=False)
        out = spike_with_surrogate(v, theta)
        assert out.data.tolist() == [0.0, 1.0, 1.0]

    def test_backward_to_membrane(self):
        v = Tensor(np.array([0.1, 5.0], np.float32), requires_grad=True)
        theta = Parameter(np.float32(0.0), requires_grad=False)
        spike_with_surrogate(v, theta, kind="triangle", width=1.0).sum().backward()
        assert v.grad[0] > 0          # near threshold: gradient flows
        assert v.grad[1] == 0.0       # far above: triangle support ended

    def test_backward_to_threshold_negative(self):
        v = Tensor(np.array([0.1], np.float32))
        theta = Parameter(np.float32(0.0))
        spike_with_surrogate(v, theta).sum().backward()
        # Raising the threshold reduces spiking.
        assert float(theta.grad) < 0


class TestSurrogateIFLayer:
    def test_statefulness_and_reset(self):
        layer = SurrogateIFLayer(threshold=1.0)
        x = Tensor(np.full((1, 4), 0.4, np.float32))
        outs = [layer(x).data.sum() for _ in range(3)]
        assert outs[2] > 0  # accumulated to threshold by step 3
        layer.reset_state()
        assert layer._v is None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SurrogateIFLayer(threshold=-1.0)

    def test_threshold_learnable_flag(self):
        fixed = SurrogateIFLayer(learn_threshold=False)
        assert not fixed.threshold.requires_grad
        learned = SurrogateIFLayer(learn_threshold=True)
        assert learned.threshold.requires_grad


class TestSurrogateSNN:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        # Two easily separable classes of small images.
        x0 = rng.normal(-0.8, 0.4, size=(60, 3, 8, 8))
        x1 = rng.normal(0.8, 0.4, size=(60, 3, 8, 8))
        x = np.concatenate([x0, x1]).astype(np.float32)
        y = np.array([0] * 60 + [1] * 60, np.int64)
        order = rng.permutation(len(x))
        return x[order], y[order]

    def test_forward_shape(self, data):
        model = SurrogateSNN(num_classes=2, channels=(8, 8), seed=0)
        x, _ = data
        logits = model(Tensor(x[:4]), timesteps=3)
        assert logits.shape == (4, 2)

    def test_training_reduces_loss(self, data):
        x, y = data
        model = SurrogateSNN(num_classes=2, channels=(8, 8), seed=0)
        losses = train_surrogate_snn(
            model, x, y, epochs=4, timesteps=3, lr=3e-3, batch_size=30
        )
        assert losses[-1] < losses[0]

    def test_learns_separable_task(self, data):
        x, y = data
        model = SurrogateSNN(num_classes=2, channels=(8, 8), seed=1)
        train_surrogate_snn(model, x, y, epochs=6, timesteps=3, lr=3e-3, batch_size=30)
        acc = evaluate_surrogate_snn(model, x, y, timesteps=3)
        assert acc > 0.8

    def test_more_timesteps_not_worse(self, data):
        x, y = data
        model = SurrogateSNN(num_classes=2, channels=(8, 8), seed=2)
        train_surrogate_snn(model, x, y, epochs=5, timesteps=4, lr=3e-3, batch_size=30)
        acc_1 = evaluate_surrogate_snn(model, x, y, timesteps=1)
        acc_8 = evaluate_surrogate_snn(model, x, y, timesteps=8)
        assert acc_8 >= acc_1 - 0.1
