"""Resumable campaign runner: determinism, atomic records, resume."""

import json

import pytest

from repro.eval.campaign import (
    CAMPAIGN_FORMAT,
    POINT_FORMAT,
    CampaignRunner,
    CampaignSpec,
    point_id,
    point_seed,
)
from repro.snn.engines.sharding import ShardExecutionError, ShardPolicy


def square_fn(params, seed):
    """A deterministic toy point: result depends on params and seed only."""
    return {"value": params["a"] * 100 + params["b"], "seed_lo": seed % 1000}


def spec3x2(seed=7):
    return CampaignSpec(name="toy", grid={"a": [1, 2, 3], "b": [0, 5]}, seed=seed)


class TestSpec:
    def test_points_expand_in_stable_grid_order(self):
        points = spec3x2().points()
        assert len(points) == 6
        assert [p.params for p in points[:3]] == [
            {"a": 1, "b": 0}, {"a": 1, "b": 5}, {"a": 2, "b": 0},
        ]
        # Expansion is deterministic: same spec, same ids, same order.
        assert [p.id for p in points] == [p.id for p in spec3x2().points()]

    def test_point_ids_are_unique_and_filesystem_safe(self):
        points = spec3x2().points()
        ids = [p.id for p in points]
        assert len(set(ids)) == len(ids)
        for pid in ids:
            assert "/" not in pid and "\0" not in pid

    def test_seeds_are_order_independent_and_seed_scoped(self):
        a = {p.id: p.seed for p in spec3x2(seed=7).points()}
        b = {p.id: p.seed for p in spec3x2(seed=7).points()}
        assert a == b
        # Different campaign seed -> every point reseeded.
        c = {p.id: p.seed for p in spec3x2(seed=8).points()}
        assert all(a[k] != c[k] for k in a)
        # A point's seed is a pure function of (campaign seed, id) — a
        # reordered or filtered grid cannot change it.
        pid = point_id({"a": 2, "b": 5})
        assert a[pid] == point_seed(7, pid)

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="", grid={"a": [1]})
        with pytest.raises(ValueError):
            CampaignSpec(name="x", grid={})
        with pytest.raises(ValueError):
            CampaignSpec(name="x", grid={"a": []})

    def test_payload_roundtrip(self):
        spec = spec3x2()
        clone = CampaignSpec.from_payload(spec.to_payload())
        assert [p.id for p in clone.points()] == [p.id for p in spec.points()]
        with pytest.raises(ValueError):
            CampaignSpec.from_payload({"format": "other/v1"})


class TestRunner:
    def test_full_run_writes_manifest_and_records(self, tmp_path):
        runner = CampaignRunner(spec3x2(), square_fn, tmp_path / "c")
        result = runner.run()
        assert result.complete
        assert result.executed == 6
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["format"] == CAMPAIGN_FORMAT
        assert len(manifest["points"]) == 6
        for pid in manifest["points"]:
            record = json.loads((tmp_path / "c" / "points" / f"{pid}.json").read_text())
            assert record["format"] == POINT_FORMAT
            assert record["id"] == pid
            assert record["result"]["value"] == (
                record["params"]["a"] * 100 + record["params"]["b"]
            )
        # results() follows grid order.
        assert [r["value"] for r in result.results()] == [
            100, 105, 200, 205, 300, 305,
        ]

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path):
        # Uninterrupted reference run.
        ref = CampaignRunner(spec3x2(), square_fn, tmp_path / "ref")
        ref.run()

        # "Killed" run: stop after 2 points, then resume to completion.
        killed = CampaignRunner(spec3x2(), square_fn, tmp_path / "killed")
        partial = killed.run(max_points=2)
        assert not partial.complete
        assert partial.executed == 2
        assert len(partial.missing) == 4

        executed_calls = []

        def counting_fn(params, seed):
            executed_calls.append(dict(params))
            return square_fn(params, seed)

        resumed = CampaignRunner(spec3x2(), counting_fn, tmp_path / "killed").run()
        assert resumed.complete
        # Only the missing points re-ran.
        assert len(executed_calls) == 4
        assert resumed.executed == 4

        # Byte-identical records, point for point.
        for pid in [p.id for p in spec3x2().points()]:
            a = (tmp_path / "ref" / "points" / f"{pid}.json").read_bytes()
            b = (tmp_path / "killed" / "points" / f"{pid}.json").read_bytes()
            assert a == b
        ref_manifest = (tmp_path / "ref" / "manifest.json").read_bytes()
        killed_manifest = (tmp_path / "killed" / "manifest.json").read_bytes()
        assert ref_manifest == killed_manifest

    def test_corrupt_and_mismatched_records_rerun(self, tmp_path, caplog):
        out = tmp_path / "c"
        runner = CampaignRunner(spec3x2(), square_fn, out)
        runner.run()
        points = spec3x2().points()
        # Truncate one record (simulating a non-atomic crash) and give
        # another a stale schema tag.
        (out / "points" / f"{points[0].id}.json").write_text('{"trunc')
        bad = json.loads((out / "points" / f"{points[1].id}.json").read_text())
        bad["format"] = "repro-campaign-point/v0"
        (out / "points" / f"{points[1].id}.json").write_text(json.dumps(bad))

        result = CampaignRunner(spec3x2(), square_fn, out).run()
        assert result.complete
        assert result.executed == 2  # exactly the two damaged points
        healed = json.loads((out / "points" / f"{points[0].id}.json").read_text())
        assert healed["format"] == POINT_FORMAT

    def test_manifest_mismatch_refuses_to_mix(self, tmp_path):
        out = tmp_path / "c"
        CampaignRunner(spec3x2(seed=7), square_fn, out).run(max_points=1)
        other = CampaignSpec(name="toy", grid={"a": [1, 2, 3], "b": [0, 5]}, seed=9)
        with pytest.raises(RuntimeError, match="different campaign"):
            CampaignRunner(other, square_fn, out).run()

    def test_point_failures_are_supervised(self, tmp_path):
        attempts = {}

        def flaky(params, seed):
            key = (params["a"], params["b"])
            attempts[key] = attempts.get(key, 0) + 1
            if params["a"] == 2 and attempts[key] == 1:
                raise RuntimeError("transient point failure")
            return square_fn(params, seed)

        result = CampaignRunner(
            spec3x2(), flaky, tmp_path / "c",
            policy=ShardPolicy(retries=1, backoff=0.0),
        ).run()
        assert result.complete
        assert len(result.failures) == 2  # a=2 failed once per b value
        assert all(f.kind == "exception" for f in result.failures)

    def test_records_carry_supervision_trail(self, tmp_path):
        """Retried points surface their failed-attempt count in the
        persisted record; clean points record 0/"" (so clean runs stay
        byte-identical regardless of substrate)."""
        attempts = {}

        def flaky(params, seed):
            key = (params["a"], params["b"])
            attempts[key] = attempts.get(key, 0) + 1
            if params["a"] == 2 and attempts[key] == 1:
                raise RuntimeError("transient point failure")
            return square_fn(params, seed)

        out = tmp_path / "c"
        result = CampaignRunner(
            spec3x2(), flaky, out,
            policy=ShardPolicy(retries=1, backoff=0.0),
        ).run()
        assert result.complete
        for point in spec3x2().points():
            payload = json.loads((out / "points" / f"{point.id}.json").read_text())
            expected = 1 if point.params["a"] == 2 else 0
            assert payload["shard_failures"] == expected
            assert payload["degraded_shard_mode"] == ""
        # The in-memory records match what resumers will read from disk.
        for pid, payload in result.records.items():
            on_disk = json.loads((out / "points" / f"{pid}.json").read_text())
            assert payload == on_disk

    def test_unrecoverable_point_raises_with_failures(self, tmp_path):
        def doomed(params, seed):
            raise ValueError("never works")

        with pytest.raises(ShardExecutionError) as excinfo:
            CampaignRunner(
                CampaignSpec(name="d", grid={"a": [1]}),
                doomed,
                tmp_path / "c",
                policy=ShardPolicy(retries=0, backoff=0.0),
            ).run()
        assert all("never works" in f.error for f in excinfo.value.failures)

    def test_parallel_modes_match_serial(self, tmp_path):
        serial = CampaignRunner(spec3x2(), square_fn, tmp_path / "s")
        serial.run()
        threaded = CampaignRunner(
            spec3x2(), square_fn, tmp_path / "t", workers=3, mode="thread"
        )
        threaded.run()
        for pid in [p.id for p in spec3x2().points()]:
            a = (tmp_path / "s" / "points" / f"{pid}.json").read_bytes()
            b = (tmp_path / "t" / "points" / f"{pid}.json").read_bytes()
            assert a == b

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CampaignRunner(spec3x2(), square_fn, tmp_path, mode="bogus")
        with pytest.raises(ValueError):
            CampaignRunner(spec3x2(), square_fn, tmp_path, workers=0)
