"""Controller-specific tests: memory protocol, traces, tiling behaviour."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.hw.controller import LayerController
from repro.hw.mapper import map_network
from repro.pipeline import build_quantized_twin
from repro.snn import convert_to_snn


@pytest.fixture(scope="module")
def small_mapped():
    ds = SyntheticCIFAR(num_train=32, num_test=8, noise=0.6, seed=23)
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    from repro.pipeline.trainer import TrainConfig, Trainer

    Trainer(model, TrainConfig(epochs=1, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    return map_network(model, calibration_input=ds.train_x), ds


class TestMemoryProtocol:
    def test_membrane_banks_toggle_per_layer(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        start_bank = ctrl.memory.membrane.read_bank
        ctrl.run_network(ds.test_x[0], timesteps=1)
        # 8 spiking layers = 8 toggles per timestep: even count returns
        # to the starting read bank.
        assert ctrl.memory.membrane.read_bank is start_bank

    def test_output_memory_holds_last_layer(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        ctrl.run_network(ds.test_x[0], timesteps=2)
        packed = ctrl.memory.output.read("current-layer-spikes")
        assert packed.dtype == np.uint8

    def test_memory_reset_between_runs(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        a = ctrl.run_network(ds.test_x[0], timesteps=2)
        b = ctrl.run_network(ds.test_x[0], timesteps=2)
        assert np.allclose(a, b)


class TestTraces:
    def test_trace_fields(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        ctrl.run_network(ds.test_x[0], timesteps=2)
        trace = ctrl.state.traces[0]
        assert trace.layer == mapped.layers[0].name
        assert trace.weight_bytes > 0
        assert trace.timestep == 0

    def test_total_cycles_accumulate(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        ctrl.run_network(ds.test_x[0], timesteps=1)
        one = ctrl.state.total_cycles()
        ctrl.run_network(ds.test_x[0], timesteps=4)
        four = ctrl.state.total_cycles()
        assert four > one

    def test_weight_reloads_counted(self, small_mapped):
        mapped, ds = small_mapped
        ctrl = LayerController(mapped)
        ctrl.run_network(ds.test_x[0], timesteps=2)
        # At least one weight tile per spiking layer per timestep.
        assert ctrl.state.weight_reloads >= 2 * (len(mapped.layers) - 1)


class TestWeightTiling:
    def test_small_layer_single_tile(self, small_mapped):
        mapped, _ = small_mapped
        ctrl = LayerController(mapped)
        assert ctrl.weight_tiles(mapped.layers[0]) == 1

    def test_large_layer_multiple_tiles(self):
        model = build_quantized_twin(
            "vgg11", width=1.0, num_classes=10, levels=2, seed=0
        )
        convert_to_snn(model)
        mapped = map_network(model)
        ctrl = LayerController(mapped)
        # conv8 at full width: 512x512x3x3 = 2.25 MB >> 8 kB.
        big = [l for l in mapped.layers if l.weights_int.size > 8 * 1024][0]
        assert ctrl.weight_tiles(big) > 1
