"""Pipeline tests: trainer, weight transfer, calibration, mini end-to-end."""

import numpy as np
import pytest

from repro import nn
from repro.data import SyntheticCIFAR
from repro.models import vgg11
from repro.pipeline import (
    TrainConfig,
    Trainer,
    build_quantized_twin,
    evaluate_model,
    run_conversion_pipeline,
    transfer_weights,
)
from repro.pipeline.conversion import calibrate_quant_steps


@pytest.fixture(scope="module")
def tiny_dataset():
    return SyntheticCIFAR(num_train=200, num_test=80, noise=0.5, seed=11)


class TestTrainer:
    def test_loss_decreases(self, tiny_dataset):
        model = vgg11(width=0.125, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=2, lr=2e-3))
        hist = trainer.fit(*tiny_dataset.train_split())
        assert hist.losses[-1] < hist.losses[0]

    def test_history_records_test_accuracy(self, tiny_dataset):
        model = vgg11(width=0.125, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=1))
        hist = trainer.fit(
            *tiny_dataset.train_split(), *tiny_dataset.test_split()
        )
        assert len(hist.test_accuracy) == 1

    def test_sgd_option(self, tiny_dataset):
        model = vgg11(width=0.125, seed=0)
        trainer = Trainer(model, TrainConfig(epochs=1, optimizer="sgd", lr=0.05))
        trainer.fit(*tiny_dataset.train_split())

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            Trainer(vgg11(width=0.125), TrainConfig(optimizer="lion"))

    def test_epoch_callback_invoked(self, tiny_dataset):
        calls = []
        model = vgg11(width=0.125, seed=0)
        Trainer(model, TrainConfig(epochs=2)).fit(
            *tiny_dataset.train_split(),
            epoch_callback=lambda e, loss: calls.append(e),
        )
        assert calls == [0, 1]


class TestTransferWeights:
    def test_copies_matching_keys(self):
        src = vgg11(width=0.125, seed=0)
        dst = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        copied = transfer_weights(src, dst)
        assert any(k.endswith("weight") for k in copied)
        src_state = src.state_dict()
        dst_state = dst.state_dict()
        for key in copied:
            assert np.allclose(src_state[key], dst_state[key])

    def test_skips_quant_only_keys(self):
        src = vgg11(width=0.125, seed=0)
        dst = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        copied = transfer_weights(src, dst)
        assert not any("step" in k for k in copied)
        assert not any("weight_scale" in k for k in copied)

    def test_no_overlap_raises(self):
        src = nn.Sequential(nn.Linear(3, 3, rng=np.random.default_rng(0)))
        dst = nn.Sequential(nn.Linear(5, 5, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError):
            transfer_weights(src, dst)

    def test_buffers_transferred(self):
        src = vgg11(width=0.125, seed=0)
        for name, buf in src.named_buffers():
            if name.endswith("running_mean"):
                buf += 1.0
        dst = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        transfer_weights(src, dst)
        means = [b for n, b in dst.named_buffers() if n.endswith("running_mean")]
        assert all(np.allclose(m, 1.0) for m in means)


class TestCalibration:
    def test_sets_all_steps(self, tiny_dataset):
        model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2)
        steps = calibrate_quant_steps(model, tiny_dataset.train_x[:64])
        quants = [m for m in model.modules() if isinstance(m, nn.QuantReLU)]
        assert len(steps) == len(quants) == 8
        assert all(s > 0 for s in steps)

    def test_requires_quant_layers(self, tiny_dataset):
        with pytest.raises(ValueError):
            calibrate_quant_steps(vgg11(width=0.125), tiny_dataset.train_x[:16])


class TestEndToEndPipeline:
    def test_mini_pipeline_shapes_and_ordering(self, tiny_dataset):
        result = run_conversion_pipeline(
            "vgg11",
            tiny_dataset,
            width=0.125,
            levels=2,
            timesteps=4,
            max_timesteps=6,
            ann_config=TrainConfig(epochs=2),
            finetune_config=TrainConfig(epochs=1, lr=5e-4),
        )
        assert 0.0 <= result.ann_accuracy <= 1.0
        assert len(result.snn_accuracy_per_step) == 6
        assert result.snn_accuracy == result.snn_accuracy_per_step[3]
        assert len(result.thresholds) == 8
        # The fine-tuned quantised model should still be quantised
        # (conversion must not mutate it).
        assert any(isinstance(m, nn.QuantReLU) for m in result.quant_model.modules())
        assert "vgg11" in result.summary()

    def test_snn_approaches_quant_accuracy(self, tiny_dataset):
        result = run_conversion_pipeline(
            "vgg11",
            tiny_dataset,
            width=0.125,
            levels=2,
            timesteps=8,
            max_timesteps=8,
            ann_config=TrainConfig(epochs=3),
            finetune_config=TrainConfig(epochs=2, lr=5e-4),
        )
        # Within a reasonable band of the quantised ANN by T=8 (the
        # paper's headline behaviour, scaled to the tiny setup).
        assert result.snn_accuracy >= result.quant_accuracy - 0.15
