"""Fault-injection tests."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR
from repro.hw import SpikingInferenceAccelerator, map_network
from repro.hw.faults import (
    flip_threshold_bits,
    flip_weight_bits,
    weight_fault_sweep,
)
from repro.pipeline import TrainConfig, Trainer, build_quantized_twin
from repro.snn import convert_to_snn


@pytest.fixture(scope="module")
def mapped_and_data():
    ds = SyntheticCIFAR(num_train=200, num_test=80, noise=0.6, seed=31)
    model = build_quantized_twin("vgg11", width=0.125, num_classes=10, levels=2, seed=0)
    Trainer(model, TrainConfig(epochs=2, lr=1e-3)).fit(ds.train_x, ds.train_y)
    convert_to_snn(model)
    return map_network(model, calibration_input=ds.train_x), ds


class TestFlipWeightBits:
    def test_zero_rate_is_identity(self, mapped_and_data):
        mapped, _ = mapped_and_data
        faulty, flips = flip_weight_bits(mapped, 0.0, np.random.default_rng(0))
        assert flips == 0
        for a, b in zip(mapped.layers, faulty.layers):
            assert np.array_equal(a.weights_int, b.weights_int)

    def test_original_untouched(self, mapped_and_data):
        mapped, _ = mapped_and_data
        before = mapped.layers[1].weights_int.copy()
        flip_weight_bits(mapped, 0.2, np.random.default_rng(1))
        assert np.array_equal(mapped.layers[1].weights_int, before)

    def test_flip_count_scales_with_rate(self, mapped_and_data):
        mapped, _ = mapped_and_data
        _, few = flip_weight_bits(mapped, 0.001, np.random.default_rng(2))
        _, many = flip_weight_bits(mapped, 0.05, np.random.default_rng(2))
        assert many > few > 0

    def test_weights_stay_in_range(self, mapped_and_data):
        mapped, _ = mapped_and_data
        faulty, _ = flip_weight_bits(mapped, 0.3, np.random.default_rng(3))
        for layer in faulty.layers:
            assert layer.weights_int.min() >= -128
            assert layer.weights_int.max() <= 127

    def test_invalid_rate(self, mapped_and_data):
        mapped, _ = mapped_and_data
        with pytest.raises(ValueError):
            flip_weight_bits(mapped, 1.5, np.random.default_rng(0))

    def test_faulty_network_still_runs(self, mapped_and_data):
        mapped, ds = mapped_and_data
        faulty, _ = flip_weight_bits(mapped, 0.01, np.random.default_rng(4))
        logits, _ = SpikingInferenceAccelerator(faulty).run(ds.test_x[:4], timesteps=4)
        assert logits.shape == (4, 10)


class TestFlipThresholdBits:
    def test_targeted_flip(self, mapped_and_data):
        mapped, _ = mapped_and_data
        original = mapped.layers[1].config.threshold_int
        faulty = flip_threshold_bits(mapped, layer_index=1, bit=3)
        assert faulty.layers[1].config.threshold_int == original ^ 8
        assert mapped.layers[1].config.threshold_int == original

    def test_threshold_stays_positive(self, mapped_and_data):
        mapped, _ = mapped_and_data
        # threshold_int = 1024 = bit 10; flipping it would zero the register.
        faulty = flip_threshold_bits(mapped, layer_index=1, bit=10)
        assert faulty.layers[1].config.threshold_int >= 1

    def test_bit_range_checked(self, mapped_and_data):
        mapped, _ = mapped_and_data
        with pytest.raises(ValueError):
            flip_threshold_bits(mapped, 0, bit=16)

    def test_high_bit_flip_degrades_more(self, mapped_and_data):
        mapped, ds = mapped_and_data
        base_acc = SpikingInferenceAccelerator(mapped).accuracy(
            ds.test_x, ds.test_y, timesteps=4
        )
        # Flipping bit 14 makes the threshold enormous (layer goes silent).
        big = flip_threshold_bits(mapped, layer_index=1, bit=14)
        big_acc = SpikingInferenceAccelerator(big).accuracy(
            ds.test_x, ds.test_y, timesteps=4
        )
        assert big_acc <= base_acc


class TestWeightFaultSweep:
    def test_sweep_monotone_tendency(self, mapped_and_data):
        mapped, ds = mapped_and_data
        reports = weight_fault_sweep(
            mapped, ds.test_x, ds.test_y,
            bit_error_rates=[0.0, 0.05], timesteps=4, seed=0,
        )
        assert len(reports) == 2
        assert reports[0].accuracy_drop == pytest.approx(0.0, abs=1e-9)
        # 5% BER mangles INT8 weights badly; accuracy must suffer.
        assert reports[1].faulty_accuracy <= reports[0].faulty_accuracy
        assert reports[1].flipped_bits > 0

    def test_baseline_shared(self, mapped_and_data):
        mapped, ds = mapped_and_data
        reports = weight_fault_sweep(
            mapped, ds.test_x[:40], ds.test_y[:40],
            bit_error_rates=[0.001, 0.01], timesteps=4,
        )
        assert reports[0].baseline_accuracy == reports[1].baseline_accuracy
