"""The analytic cost model: fit, predict, persist, degrade.

The model is the planner's memory — it must recover the affine
coefficients it was fed, refuse to predict before it has evidence, and
treat its persistence file as a cache (corrupt documents degrade to a
fresh model, mirroring the plan-file hardening)."""

import json

import numpy as np
import pytest

from repro.snn.engines.costmodel import (
    COST_MODEL_FORMAT,
    CostModel,
    cost_model_path_for,
    sparse_feature_ops,
)


def synthetic_samples(slope, intercept, count=8, start=1e4, rng=None):
    """(ops, ms) pairs on a known affine law, optionally noised."""
    ops = np.linspace(start, start * count, count)
    ms = slope * ops + intercept
    if rng is not None:
        ms = ms + rng.normal(scale=intercept * 0.01, size=count)
    return list(zip(ops.tolist(), ms.tolist()))


class TestFitPredict:
    def test_round_trip_recovers_affine_law(self):
        model = CostModel()
        for ops, ms in synthetic_samples(2e-6, 0.5):
            model.observe("gemm", ops, ms)
        assert model.ready("gemm")
        for ops in (3e4, 1e6):
            predicted = model.predict_ms("gemm", ops)
            assert predicted == pytest.approx(2e-6 * ops + 0.5, rel=1e-6)

    def test_not_ready_below_min_observations(self):
        model = CostModel(min_observations=6)
        for ops, ms in synthetic_samples(1e-6, 0.1, count=5):
            model.observe("gemm", ops, ms)
        assert not model.ready("gemm")
        assert model.predict_ms("gemm", 1e5) is None

    def test_not_ready_without_ops_spread(self):
        # Identical ops values confound slope and intercept: no fit.
        model = CostModel()
        for _ in range(10):
            model.observe("gemm", 1e5, 1.0)
        assert not model.ready("gemm")

    def test_plan_ready_needs_gemm_and_coo(self):
        model = CostModel()
        for ops, ms in synthetic_samples(2e-6, 0.5):
            model.observe("gemm", ops, ms)
        assert not model.plan_ready()  # COO challenger still unpriced
        for ops, ms in synthetic_samples(1e-6, 0.2):
            model.observe("event-batched", ops, ms)
        assert model.plan_ready()

    def test_coefficients_clamped_non_negative(self):
        # A decreasing ms-vs-ops trend would fit a negative slope;
        # time never decreases with work, so the fit clamps at zero.
        model = CostModel()
        for i in range(8):
            model.observe("gemm", 1e4 * (i + 1), 10.0 - i)
        assert model.ready("gemm")
        assert model.predict_ms("gemm", 0.0) >= 0.0
        assert model.predict_ms("gemm", 1e9) >= model.predict_ms("gemm", 0.0)

    def test_ignores_unknown_backends_and_bad_samples(self):
        model = CostModel()
        model.observe("stepped", 1e5, 1.0)  # neuron rows: not priced
        model.observe("gemm", float("nan"), 1.0)
        model.observe("gemm", 1e5, float("inf"))
        model.observe("gemm", -1.0, 1.0)
        assert len(model) == 0

    def test_observe_records_ingests_profile_rows(self):
        model = CostModel(min_observations=2)
        rows = [
            {"backend": "gemm", "synaptic_ops": 1e5, "wall_clock_ms": 1.0},
            {"backend": "gemm", "synaptic_ops": 2e5, "wall_clock_ms": 2.0},
            {"backend": "stepped", "synaptic_ops": 9e9, "wall_clock_ms": 5.0},
            {"backend": "gemm", "synaptic_ops": 0, "wall_clock_ms": 1.0},
        ]
        model.observe_records(rows)
        assert len(model) == 2
        assert model.ready("gemm")

    def test_residuals_report_fit_quality(self):
        model = CostModel()
        rng = np.random.default_rng(7)
        for ops, ms in synthetic_samples(2e-6, 0.5, rng=rng):
            model.observe("gemm", ops, ms)
        residuals = model.residuals()
        assert set(residuals) == {"gemm"}
        assert residuals["gemm"]["observations"] == 8
        assert residuals["gemm"]["mean_abs_pct"] < 5.0

    def test_observation_window_is_bounded(self):
        from repro.snn.engines.costmodel import MAX_OBSERVATIONS

        model = CostModel()
        for i in range(MAX_OBSERVATIONS + 50):
            model.observe("gemm", float(i + 1), float(i + 1))
        snapshot = model.snapshot()
        assert snapshot["observations"]["gemm"] == MAX_OBSERVATIONS


class TestSparseFeature:
    def test_scales_dense_ops_by_density(self):
        assert sparse_feature_ops(1e6, 0.1) == pytest.approx(1e5)

    def test_density_clamped_to_unit_interval(self):
        assert sparse_feature_ops(100.0, 1.5) == 100.0
        assert sparse_feature_ops(100.0, -0.5) == 0.0


class TestPersistence:
    def test_sibling_path_derivation(self):
        assert cost_model_path_for("plans.json") == "plans.cost.json"
        assert cost_model_path_for("/a/b/vgg.plans.json") == "/a/b/vgg.plans.cost.json"
        assert cost_model_path_for("plans") == "plans.cost.json"

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "model.cost.json")
        model = CostModel()
        for ops, ms in synthetic_samples(2e-6, 0.5):
            model.observe("gemm", ops, ms)
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.ready("gemm")
        assert loaded.predict_ms("gemm", 5e5) == pytest.approx(
            model.predict_ms("gemm", 5e5)
        )

    def test_missing_file_yields_fresh_model(self, tmp_path):
        model = CostModel.load(str(tmp_path / "absent.json"))
        assert len(model) == 0
        assert not model.plan_ready()

    def test_corrupt_file_degrades_with_one_warning(self, tmp_path, caplog):
        path = tmp_path / "garbage.json"
        path.write_text("{ not json at all")
        with caplog.at_level("WARNING"):
            model = CostModel.load(str(path))
        assert len(model) == 0
        assert any("cost-model" in r.message for r in caplog.records)

    def test_foreign_format_degrades(self, tmp_path, caplog):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "something/else", "backends": {}}))
        with caplog.at_level("WARNING"):
            model = CostModel.load(str(path))
        assert len(model) == 0

    def test_truncated_payload_degrades(self, tmp_path, caplog):
        path = tmp_path / "half.json"
        path.write_text(json.dumps(
            {"format": COST_MODEL_FORMAT, "backends": {"gemm": [[1.0]]}}
        ))
        with caplog.at_level("WARNING"):
            model = CostModel.load(str(path))
        assert len(model) == 0

    def test_caller_min_observations_wins_over_payload(self, tmp_path):
        path = str(tmp_path / "m.json")
        model = CostModel(min_observations=2)
        for ops, ms in synthetic_samples(1e-6, 0.1, count=3):
            model.observe("gemm", ops, ms)
        model.save(path)
        strict = CostModel.load(path, min_observations=6)
        assert strict.min_observations == 6
        assert not strict.ready("gemm")
