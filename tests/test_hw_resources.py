"""Resource/throughput model tests against Tables III and IV."""

import pytest

from repro.eval import table3_experiment, table4_experiment
from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.resources import PYNQ_Z2_AVAILABLE, ResourceModel, ThroughputModel


# Paper Table III.
PAPER_TABLE3 = {
    "LUT": (11932, 22.43),
    "FF": (8157, 7.67),        # note: the paper prints DSP's pct here too
    "DSP": (17, 7.73),
    "BRAM": (95, 67.86),
    "LUTRAM": (158, 0.90),
    "BUFG": (1, 3.13),
}


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["parameter"]: r for r in table3_experiment()}

    def test_exact_utilized_counts(self, rows):
        for key, (utilized, _) in PAPER_TABLE3.items():
            assert rows[key]["utilized"] == utilized, key

    def test_available_matches_device(self, rows):
        for key in PAPER_TABLE3:
            assert rows[key]["available"] == PYNQ_Z2_AVAILABLE[key]

    def test_percentages(self, rows):
        assert rows["LUT"]["percentage"] == pytest.approx(22.43, abs=0.02)
        assert rows["BRAM"]["percentage"] == pytest.approx(67.86, abs=0.02)

    def test_dsp_structure(self):
        # 16 BN multiplier lanes + 1 misc = 17 (the DSP-frugality claim).
        model = ResourceModel()
        assert model.dsp_count() == 17

    def test_render(self):
        text = ResourceModel().report().render()
        assert "LUT" in text and "BRAM" in text


class TestScalingBehaviour:
    def test_more_pes_more_luts(self):
        big = ArchConfig(pe_rows=16, pe_cols=16)
        small = ArchConfig(pe_rows=4, pe_cols=4)
        assert (
            ResourceModel(big).report().used["LUT"]
            > ResourceModel(small).report().used["LUT"]
        )

    def test_memory_drives_bram(self):
        bigger_mem = ArchConfig(output_bytes=112 * 1024)
        assert ResourceModel(bigger_mem).bram_blocks() > ResourceModel().bram_blocks()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4_experiment()

    def test_this_work_column(self, result):
        ours = [r for r in result["rows"] if r["paper"] == "This Work"][0]
        assert ours["gops"] == pytest.approx(38.4)
        assert ours["gops_per_pe"] == pytest.approx(0.6)
        assert ours["gops_per_watt"] == pytest.approx(24.93, abs=0.05)
        assert ours["dsp"] == 17
        assert ours["gops_per_dsp"] == pytest.approx(2.25, abs=0.02)

    def test_prior_art_present(self, result):
        assert len(result["rows"]) == 6

    def test_pe_efficiency_headline(self, result):
        # Paper: ~2x higher GOPS/PE than the best prior art.
        assert 1.5 < result["pe_efficiency_gain"] < 2.5

    def test_dsp_efficiency_headline(self, result):
        # Paper: ~4.5x higher GOPS/DSP.
        assert 4.0 < result["dsp_efficiency_gain"] < 5.5

    def test_energy_efficiency_is_best(self, result):
        assert result["energy_efficiency_gain"] > 1.0


class TestThroughputModel:
    def test_peak_arithmetic(self):
        # 64 PEs x 6 ops x 100 MHz = 38.4 GOPS.
        assert PYNQ_Z2.peak_gops == pytest.approx(38.4)
        assert PYNQ_Z2.ops_per_pe_per_cycle == 6

    def test_effective_gops(self):
        tm = ThroughputModel()
        assert tm.effective_gops(0.5) == pytest.approx(19.2)
        with pytest.raises(ValueError):
            tm.effective_gops(1.5)

    def test_report_name_passthrough(self):
        report = ThroughputModel().report(name="X", platform="Y")
        assert report.name == "X" and report.platform == "Y"
