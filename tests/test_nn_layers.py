"""Layer semantics: Conv2d, Linear, BatchNorm2d, pooling, dropout."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad


class TestConv2d:
    def test_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 3, 8, 8), np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias(self):
        conv = nn.Conv2d(1, 1, 3, bias=False)
        assert conv.bias is None
        assert conv.num_parameters() == 9

    def test_deterministic_init(self):
        c1 = nn.Conv2d(2, 4, 3, rng=np.random.default_rng(7))
        c2 = nn.Conv2d(2, 4, 3, rng=np.random.default_rng(7))
        assert np.allclose(c1.weight.data, c2.weight.data)


class TestLinear:
    def test_affine(self):
        lin = nn.Linear(3, 2, rng=np.random.default_rng(0))
        lin.weight.data = np.array([[1, 0, 0], [0, 1, 0]], np.float32)
        lin.bias.data = np.array([10.0, 20.0], np.float32)
        out = lin(Tensor(np.array([[1.0, 2.0, 3.0]], np.float32)))
        assert np.allclose(out.data, [[11.0, 22.0]])


class TestBatchNorm2d:
    def test_training_normalises(self):
        bn = nn.BatchNorm2d(4)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(3.0, 2.0, size=(16, 4, 5, 5)).astype(np.float32))
        out = bn(x)
        assert abs(float(out.data.mean())) < 1e-3
        assert float(out.data.std()) == pytest.approx(1.0, abs=0.05)

    def test_running_stats_update(self):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 3, 3), 10.0, np.float32))
        bn(x)
        assert np.all(bn.running_mean > 0)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm2d(1)
        rng = np.random.default_rng(0)
        for _ in range(80):
            bn(Tensor(rng.normal(5.0, 1.0, size=(32, 1, 4, 4)).astype(np.float32)))
        bn.eval()
        with no_grad():
            out = bn(Tensor(np.full((1, 1, 4, 4), 5.0, np.float32)))
        assert abs(float(out.data.mean())) < 0.2

    def test_fold_coefficients_match_eval(self):
        bn = nn.BatchNorm2d(3)
        rng = np.random.default_rng(1)
        bn.gamma.data = rng.uniform(0.5, 1.5, 3).astype(np.float32)
        bn.beta.data = rng.normal(size=3).astype(np.float32)
        for _ in range(10):
            bn(Tensor(rng.normal(1.0, 2.0, size=(8, 3, 4, 4)).astype(np.float32)))
        bn.eval()
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        with no_grad():
            ref = bn(Tensor(x)).data
        g, h = bn.fold_coefficients()
        folded = x * g[None, :, None, None] + h[None, :, None, None]
        assert np.allclose(folded, ref, atol=1e-4)

    def test_gradients_flow_to_affine(self):
        bn = nn.BatchNorm2d(2)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 2, 3, 3)).astype(np.float32))
        bn(x).sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestPoolingLayers:
    def test_maxpool_shape(self):
        pool = nn.MaxPool2d(2)
        assert pool(Tensor(np.zeros((1, 2, 8, 8), np.float32))).shape == (1, 2, 4, 4)

    def test_avgpool_custom_stride(self):
        pool = nn.AvgPool2d(3, stride=1)
        assert pool(Tensor(np.zeros((1, 1, 5, 5), np.float32))).shape == (1, 1, 3, 3)

    def test_global_avg(self):
        pool = nn.GlobalAvgPool2d()
        assert pool(Tensor(np.zeros((3, 7, 4, 4), np.float32))).shape == (3, 7)


class TestDropoutLayer:
    def test_respects_training_flag(self):
        drop = nn.Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,), np.float32))
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)
        drop.train()
        assert (drop(x).data == 0).any()


class TestFlattenIdentity:
    def test_flatten(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4), np.float32)))
        assert out.shape == (2, 12)

    def test_identity(self):
        x = Tensor(np.ones(3, np.float32))
        assert nn.Identity()(x) is x
