"""Markdown report-generator tests."""

import pytest

from repro.eval.report import (
    asic_section,
    build_hardware_report,
    table1_section,
    table2_section,
    table3_section,
    table4_section,
    write_hardware_report,
)


class TestSections:
    def test_table1_contains_both_networks(self):
        text = table1_section()
        assert "resnet18" in text and "vgg11" in text
        assert "FC (512)" in text
        assert "58.9" in text  # paper FC value appears

    def test_table2_rows(self):
        text = table2_section()
        for k in (3, 5, 7, 11):
            assert f"({k}x{k},64)" in text

    def test_table3_exact_values(self):
        text = table3_section()
        assert "11932" in text
        assert "| BRAM | 95 | 95 |" in text

    def test_table4_headline(self):
        text = table4_section()
        assert "This Work" in text
        assert "DSP-efficiency gain" in text

    def test_asic_values(self):
        text = asic_section()
        assert "192" in text
        assert "11.0" in text


class TestFullReport:
    def test_report_is_valid_markdown_tables(self):
        text = build_hardware_report()
        # Every table row line must have matching pipe counts with its header.
        blocks = [b for b in text.split("\n\n") if b.startswith("|")]
        assert blocks, "no tables rendered"
        for block in blocks:
            lines = block.strip().splitlines()
            width = lines[0].count("|")
            assert all(l.count("|") == width for l in lines), block[:80]

    def test_custom_title(self):
        text = build_hardware_report(title="# custom")
        assert text.startswith("# custom")

    def test_write_report(self, tmp_path):
        path = tmp_path / "report" / "hw.md"
        text = write_hardware_report(path)
        assert path.exists()
        assert path.read_text() == text
