"""RTL-generator tests: structural properties of the emitted Verilog."""

import re

import pytest

from repro.hw.config import ArchConfig, PYNQ_Z2
from repro.hw.rtl import (
    generate_activation_unit,
    generate_all,
    generate_bn_lane,
    generate_membrane_pingpong,
    generate_pe,
    generate_pe_array,
    write_rtl,
)


def balanced(text: str, open_kw: str, close_kw: str) -> bool:
    return len(re.findall(rf"\b{open_kw}\b", text)) == len(
        re.findall(rf"\b{close_kw}\b", text)
    )


class TestProcessingElementRtl:
    def test_module_declared(self):
        text = generate_pe()
        assert "module processing_element" in text
        assert text.count("endmodule") == 1

    def test_mux_count_matches_arch(self):
        text = generate_pe()
        # One conditional weight tap per mux.
        assert len(re.findall(r"tap\d+ = spike", text)) == PYNQ_Z2.muxes_per_pe

    def test_weight_ports_are_8bit(self):
        text = generate_pe()
        assert f"[{PYNQ_Z2.adder_bits - 1}:0] weight0" in text

    def test_psum_width_parameter(self):
        text = generate_pe()
        assert f"parameter PSUM_W = {PYNQ_Z2.psum_bits}" in text

    def test_event_gating_present(self):
        text = generate_pe()
        assert "row_valid" in text  # silent rows skip the update

    def test_custom_arch_propagates(self):
        arch = ArchConfig(muxes_per_pe=5, adder_bits=6, psum_bits=20)
        text = generate_pe(arch)
        assert len(re.findall(r"tap\d+ = spike", text)) == 5
        assert "[5:0] weight0" in text
        assert "parameter PSUM_W = 20" in text

    def test_begin_end_balanced(self):
        assert balanced(generate_pe(), "begin", "end")


class TestPeArrayRtl:
    def test_generate_loop_covers_all_pes(self):
        text = generate_pe_array()
        assert f"gi < {PYNQ_Z2.num_pes}" in text

    def test_flat_bus_widths(self):
        text = generate_pe_array()
        weights_bits = PYNQ_Z2.num_pes * PYNQ_Z2.muxes_per_pe * PYNQ_Z2.adder_bits
        psum_bits = PYNQ_Z2.num_pes * PYNQ_Z2.psum_bits
        assert f"[{weights_bits - 1}:0] weights_flat" in text
        assert f"[{psum_bits - 1}:0]   psums_flat" in text

    def test_instantiates_pe(self):
        text = generate_pe_array()
        assert "processing_element" in text


class TestActivationUnitRtl:
    def test_if_lif_mode_mux(self):
        text = generate_activation_unit()
        assert "lif_mode" in text
        assert ">>> leak_shift" in text  # subtract-shift leak

    def test_reset_by_subtraction(self):
        text = generate_activation_unit()
        assert "v_next - threshold" in text
        assert "reset_to_zero" in text

    def test_threshold_compare(self):
        text = generate_activation_unit()
        assert "(v_next >= threshold)" in text

    def test_membrane_width(self):
        assert f"parameter V_W = {PYNQ_Z2.psum_bits}" in generate_activation_unit()


class TestBnLaneRtl:
    def test_dsp_multiply_present(self):
        text = generate_bn_lane()
        assert "psum * g_coef" in text

    def test_fraction_parameter(self):
        assert f"parameter FRAC   = {PYNQ_Z2.bn_frac_bits}" in generate_bn_lane()

    def test_bias_add(self):
        assert "h_coef" in generate_bn_lane()


class TestMembranePingPongRtl:
    def test_depth_matches_memory_map(self):
        text = generate_membrane_pingpong()
        depth = PYNQ_Z2.membrane_half_bytes // 2  # 16-bit entries
        assert f"parameter DEPTH  = {depth}" in text

    def test_two_banks_and_swap(self):
        text = generate_membrane_pingpong()
        assert "u1_state" in text and "u2_state" in text
        assert "role <= ~role" in text

    def test_block_ram_hint(self):
        assert 'ram_style = "block"' in generate_membrane_pingpong()


class TestGenerateAll:
    def test_five_files(self):
        files = generate_all()
        assert set(files) == {
            "pe.v", "pe_array.v", "activation_unit.v", "bn_lane.v",
            "membrane_pingpong.v",
        }

    def test_every_file_has_provenance_header(self):
        for text in generate_all().values():
            assert "generated from ArchConfig" in text
            assert "repro.hw.rtl" in text

    def test_every_module_balanced(self):
        for name, text in generate_all().items():
            opens = len(re.findall(r"^\s*module\s", text, re.MULTILINE))
            closes = len(re.findall(r"^\s*endmodule", text, re.MULTILINE))
            assert opens == closes >= 1, name
            assert balanced(text, "begin", "end"), name

    def test_write_rtl(self, tmp_path):
        written = write_rtl(tmp_path / "rtl")
        assert len(written) == 5
        for path in written.values():
            assert open(path).read().startswith("//")
