"""Memory-system tests: capacity enforcement, ping-pong protocol."""

import numpy as np
import pytest

from repro.hw.config import PYNQ_Z2
from repro.hw.memory import BramBank, MemoryError_, MemoryMap, PingPongBuffer


class TestBramBank:
    def test_write_read_roundtrip(self):
        bank = BramBank("test", 1024)
        data = np.arange(10, dtype=np.int16)
        bank.write("a", data)
        assert np.array_equal(bank.read("a"), data)

    def test_capacity_enforced(self):
        bank = BramBank("test", 16)
        with pytest.raises(MemoryError_):
            bank.write("big", np.zeros(32, np.uint8))

    def test_overwrite_frees_old_allocation(self):
        bank = BramBank("test", 16)
        bank.write("a", np.zeros(16, np.uint8))
        bank.write("a", np.zeros(16, np.uint8))  # replace, not add

    def test_missing_key(self):
        with pytest.raises(MemoryError_):
            BramBank("test", 16).read("nope")

    def test_traffic_counters(self):
        bank = BramBank("test", 64)
        bank.write("a", np.zeros(8, np.uint8))
        bank.read("a")
        assert bank.bytes_written == 8
        assert bank.bytes_read == 8

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BramBank("x", 0)


class TestPingPongBuffer:
    def test_roles_toggle(self):
        pp = PingPongBuffer(1024)
        first_read = pp.read_bank
        pp.toggle()
        assert pp.read_bank is not first_read
        assert pp.write_bank is first_read

    def test_membrane_roundtrip_across_timesteps(self):
        pp = PingPongBuffer(1024)
        v0 = np.array([1, 2, 3], np.int16)
        pp.preload("L0", v0)
        got = pp.read_membrane("L0")
        assert np.array_equal(got, v0)
        pp.write_membrane("L0", got + 10)
        pp.toggle()
        assert np.array_equal(pp.read_membrane("L0"), v0 + 10)

    def test_read_after_write_hazard_raises(self):
        pp = PingPongBuffer(1024)
        pp.preload("L0", np.zeros(2, np.int16))
        pp.write_membrane("L0", np.ones(2, np.int16))
        with pytest.raises(MemoryError_):
            pp.read_membrane("L0")

    def test_half_capacity(self):
        pp = PingPongBuffer(64)  # halves of 32 bytes
        pp.preload("a", np.zeros(16, np.int16))  # exactly 32 B
        with pytest.raises(MemoryError_):
            pp.write_membrane("b", np.zeros(17, np.int16))

    def test_reset(self):
        pp = PingPongBuffer(1024)
        pp.preload("a", np.zeros(4, np.int16))
        pp.toggle()
        pp.reset()
        with pytest.raises(MemoryError_):
            pp.read_membrane("a")


class TestMemoryMap:
    def test_paper_capacities(self):
        mm = MemoryMap()
        assert mm.spike_in.capacity_bytes == 128
        assert mm.residual.capacity_bytes == 128 * 1024
        assert mm.weights.capacity_bytes == 8 * 1024
        assert mm.output.capacity_bytes == 56 * 1024
        assert mm.membrane.banks[0].capacity_bytes == 32 * 1024

    def test_total_bytes(self):
        mm = MemoryMap()
        expected = 128 + 128 * 1024 + 64 * 1024 + 8 * 1024 + 56 * 1024
        assert mm.total_bytes() == expected

    def test_weight_memory_holds_64_small_kernels(self):
        # The paper: 8 kB weight memory stores up to 64 kernels.
        mm = MemoryMap()
        kernels = np.zeros((64, 14, 3, 3), np.int8)  # 64 kernels, 14 ch deep
        mm.weights.write("kernels", kernels)

    def test_max_tile_neurons(self):
        # One ping-pong half (32 kB) holds 16384 16-bit membranes.
        assert PYNQ_Z2.max_tile_neurons == 16384

    def test_reset_clears_all(self):
        mm = MemoryMap()
        mm.weights.write("a", np.zeros(8, np.int8))
        mm.reset()
        with pytest.raises(MemoryError_):
            mm.weights.read("a")

    def test_bram_block_estimate_positive(self):
        assert MemoryMap().bram_blocks() > 50
