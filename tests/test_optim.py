"""Optimiser and scheduler tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, CosineSchedule, StepSchedule, clip_grad_norm
from repro.tensor import Tensor


def quadratic_loss(p: Parameter):
    target = Tensor(np.array([1.0, -2.0, 3.0], np.float32))
    diff = p - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, np.float32))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(3, np.float32))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                loss = quadratic_loss(p)
                opt.zero_grad()
                loss.backward()
                opt.step()
            losses[momentum] = quadratic_loss(p).item()
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(2, np.float32))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(2, np.float32)
        opt.step()
        assert np.all(p.data < 1.0)

    def test_nesterov_runs(self):
        p = Parameter(np.ones(3, np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        quadratic_loss(p).backward()
        opt.step()
        assert not np.allclose(p.data, 1.0)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2, np.float32))
        SGD([p], lr=0.1).step()  # no grad -> no change
        assert np.allclose(p.data, 1.0)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1, np.float32))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3, np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            loss = quadratic_loss(p)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(p.data, [1.0, -2.0, 3.0], atol=1e-2)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1, np.float32))
        opt = Adam([p], lr=0.5)
        p.grad = np.array([1.0], np.float32)
        opt.step()
        # First Adam step magnitude ~ lr regardless of gradient scale.
        assert abs(p.data.item()) == pytest.approx(0.5, rel=1e-3)

    def test_weight_decay(self):
        p = Parameter(np.ones(1, np.float32))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, np.float32)
        opt.step()
        assert p.data.item() < 1.0


class TestClipGradNorm:
    def test_clips_large(self):
        p = Parameter(np.zeros(4, np.float32))
        p.grad = np.full(4, 10.0, np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small(self):
        p = Parameter(np.zeros(4, np.float32))
        p.grad = np.full(4, 0.1, np.float32)
        clip_grad_norm([p], max_norm=10.0)
        assert np.allclose(p.grad, 0.1)


class TestSchedulers:
    def test_step_schedule(self):
        p = Parameter(np.zeros(1, np.float32))
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_endpoints(self):
        p = Parameter(np.zeros(1, np.float32))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-8)

    def test_cosine_monotone_decrease(self):
        p = Parameter(np.zeros(1, np.float32))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_args(self):
        p = Parameter(np.zeros(1, np.float32))
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            StepSchedule(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineSchedule(opt, total_epochs=0)
