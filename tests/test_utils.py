"""Utility tests: serialization, seeding, logging."""

import numpy as np
import pytest

from repro.models import vgg11
from repro.utils import RunLogger, load_state, save_state, seed_everything, spawn_rngs


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = vgg11(width=0.125, seed=1)
        path = save_state(model, tmp_path / "model.npz", metadata={"epochs": 3})
        fresh = vgg11(width=0.125, seed=2)
        fresh, meta = load_state(fresh, path)
        assert meta == {"epochs": 3}
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), fresh.named_parameters()
        ):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_buffers_roundtrip(self, tmp_path):
        model = vgg11(width=0.125, seed=1)
        for name, buf in model.named_buffers():
            if name.endswith("running_mean"):
                buf += 3.0
        path = save_state(model, tmp_path / "m.npz")
        fresh = vgg11(width=0.125, seed=0)
        load_state(fresh, path)
        means = [b for n, b in fresh.named_buffers() if n.endswith("running_mean")]
        assert all(np.allclose(m, 3.0) for m in means)

    def test_creates_directories(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()

    def test_architecture_mismatch_raises(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "m.npz")
        wrong = vgg11(width=0.25)
        with pytest.raises((ValueError, KeyError)):
            load_state(wrong, path)

    def test_empty_metadata(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "m.npz")
        _, meta = load_state(vgg11(width=0.125), path)
        assert meta == {}


class TestSeeding:
    def test_seed_everything_deterministic(self):
        a = seed_everything(5).random(4)
        b = seed_everything(5).random(4)
        assert np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            seed_everything(-1)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, ["data", "init", "dropout"])
        assert set(rngs) == {"data", "init", "dropout"}
        a = rngs["data"].random(8)
        b = rngs["init"].random(8)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        a = spawn_rngs(7, ["x", "y"])["y"].random(4)
        b = spawn_rngs(7, ["x", "y"])["y"].random(4)
        assert np.array_equal(a, b)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, ["a", "a"])


class TestRunLogger:
    def test_records_in_memory(self):
        logger = RunLogger("test")
        logger.log("epoch", loss=0.5)
        logger.log("epoch", loss=0.3)
        logger.log("eval", accuracy=0.9)
        assert len(logger.metrics("epoch")) == 2
        assert logger.last("epoch")["loss"] == 0.3
        assert logger.last("missing") is None

    def test_writes_jsonl(self, tmp_path):
        import json

        path = tmp_path / "log" / "run.jsonl"
        logger = RunLogger("test", path=path)
        logger.log("epoch", loss=1.0)
        logger.log("epoch", loss=0.5)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["loss"] == 0.5

    def test_elapsed_monotone(self):
        logger = RunLogger()
        a = logger.log("tick")
        b = logger.log("tick")
        assert b["elapsed_s"] >= a["elapsed_s"]


class TestAtomicWrites:
    def test_roundtrip_and_no_temp_left(self, tmp_path):
        from repro.utils.io import atomic_write_json, atomic_write_text

        path = tmp_path / "doc.json"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        atomic_write_json(path, {"a": 1})
        import json

        assert json.loads(path.read_text()) == {"a": 1}
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_fsync_writes_are_complete_and_durable_path_works(self, tmp_path):
        """fsync=True must produce the same complete document (the
        durability side cannot be unit-tested without killing the box,
        but the code path — fsync temp file, rename, fsync directory —
        must run without error and leave no temp files)."""
        from repro.utils.io import atomic_write_json

        path = tmp_path / "record.json"
        atomic_write_json(path, {"points": list(range(10))}, fsync=True)
        import json

        assert json.loads(path.read_text())["points"] == list(range(10))
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_fsync_calls_fsync_on_file_and_directory(self, tmp_path, monkeypatch):
        import os as _os

        from repro.utils import io as io_mod

        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            io_mod.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd)
        )
        io_mod.atomic_write_text(tmp_path / "f.txt", "x", fsync=True)
        # One fsync for the temp file's data, one for the directory entry.
        assert len(synced) == 2

    def test_no_fsync_by_default(self, tmp_path, monkeypatch):
        import os as _os

        from repro.utils import io as io_mod

        synced = []
        real_fsync = _os.fsync
        monkeypatch.setattr(
            io_mod.os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd)
        )
        io_mod.atomic_write_text(tmp_path / "f.txt", "x")
        assert synced == []

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        from repro.utils.io import atomic_write_json, atomic_write_text

        path = tmp_path / "doc.json"
        atomic_write_text(path, "original")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()}, fsync=True)
        assert path.read_text() == "original"
        assert list(tmp_path.glob("*.tmp.*")) == []
