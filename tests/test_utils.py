"""Utility tests: serialization, seeding, logging."""

import numpy as np
import pytest

from repro.models import vgg11
from repro.utils import RunLogger, load_state, save_state, seed_everything, spawn_rngs


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = vgg11(width=0.125, seed=1)
        path = save_state(model, tmp_path / "model.npz", metadata={"epochs": 3})
        fresh = vgg11(width=0.125, seed=2)
        fresh, meta = load_state(fresh, path)
        assert meta == {"epochs": 3}
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), fresh.named_parameters()
        ):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_buffers_roundtrip(self, tmp_path):
        model = vgg11(width=0.125, seed=1)
        for name, buf in model.named_buffers():
            if name.endswith("running_mean"):
                buf += 3.0
        path = save_state(model, tmp_path / "m.npz")
        fresh = vgg11(width=0.125, seed=0)
        load_state(fresh, path)
        means = [b for n, b in fresh.named_buffers() if n.endswith("running_mean")]
        assert all(np.allclose(m, 3.0) for m in means)

    def test_creates_directories(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()

    def test_architecture_mismatch_raises(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "m.npz")
        wrong = vgg11(width=0.25)
        with pytest.raises((ValueError, KeyError)):
            load_state(wrong, path)

    def test_empty_metadata(self, tmp_path):
        model = vgg11(width=0.125)
        path = save_state(model, tmp_path / "m.npz")
        _, meta = load_state(vgg11(width=0.125), path)
        assert meta == {}


class TestSeeding:
    def test_seed_everything_deterministic(self):
        a = seed_everything(5).random(4)
        b = seed_everything(5).random(4)
        assert np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            seed_everything(-1)

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, ["data", "init", "dropout"])
        assert set(rngs) == {"data", "init", "dropout"}
        a = rngs["data"].random(8)
        b = rngs["init"].random(8)
        assert not np.allclose(a, b)

    def test_spawn_reproducible(self):
        a = spawn_rngs(7, ["x", "y"])["y"].random(4)
        b = spawn_rngs(7, ["x", "y"])["y"].random(4)
        assert np.array_equal(a, b)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, ["a", "a"])


class TestRunLogger:
    def test_records_in_memory(self):
        logger = RunLogger("test")
        logger.log("epoch", loss=0.5)
        logger.log("epoch", loss=0.3)
        logger.log("eval", accuracy=0.9)
        assert len(logger.metrics("epoch")) == 2
        assert logger.last("epoch")["loss"] == 0.3
        assert logger.last("missing") is None

    def test_writes_jsonl(self, tmp_path):
        import json

        path = tmp_path / "log" / "run.jsonl"
        logger = RunLogger("test", path=path)
        logger.log("epoch", loss=1.0)
        logger.log("epoch", loss=0.5)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["loss"] == 0.5

    def test_elapsed_monotone(self):
        logger = RunLogger()
        a = logger.log("tick")
        b = logger.log("tick")
        assert b["elapsed_s"] >= a["elapsed_s"]
