"""Data-augmentation tests."""

import numpy as np
import pytest

from repro.data.augment import Augmenter, cutout, random_crop, random_horizontal_flip


@pytest.fixture
def batch():
    rng = np.random.default_rng(0)
    return rng.normal(size=(16, 3, 32, 32)).astype(np.float32)


class TestFlip:
    def test_probability_one_flips_everything(self, batch):
        out = random_horizontal_flip(batch, np.random.default_rng(0), probability=1.0)
        assert np.array_equal(out, batch[:, :, :, ::-1])

    def test_probability_zero_identity(self, batch):
        out = random_horizontal_flip(batch, np.random.default_rng(0), probability=0.0)
        assert np.array_equal(out, batch)

    def test_partial_flips(self, batch):
        out = random_horizontal_flip(batch, np.random.default_rng(1), probability=0.5)
        flipped = sum(
            np.array_equal(out[i], batch[i, :, :, ::-1]) for i in range(len(batch))
        )
        assert 0 < flipped < len(batch)

    def test_original_untouched(self, batch):
        copy = batch.copy()
        random_horizontal_flip(batch, np.random.default_rng(2))
        assert np.array_equal(batch, copy)

    def test_invalid_probability(self, batch):
        with pytest.raises(ValueError):
            random_horizontal_flip(batch, np.random.default_rng(0), probability=2.0)


class TestCrop:
    def test_shape_preserved(self, batch):
        out = random_crop(batch, np.random.default_rng(0), padding=4)
        assert out.shape == batch.shape

    def test_content_shifted(self, batch):
        out = random_crop(batch, np.random.default_rng(3), padding=4)
        # With 16 samples and 9x9 offsets, identity for all is unlikely.
        assert not np.array_equal(out, batch)

    def test_interior_pixels_preserved(self, batch):
        # A crop is a translation: some sub-window of the original must
        # appear verbatim in the output.
        out = random_crop(batch[:1], np.random.default_rng(4), padding=2)
        found = False
        for dy in range(-2, 3):
            for dx in range(-2, 3):
                shifted = np.roll(np.roll(batch[0], dy, axis=1), dx, axis=2)
                if np.allclose(out[0, :, 4:-4, 4:-4], shifted[:, 4:-4, 4:-4]):
                    found = True
        assert found

    def test_invalid_padding(self, batch):
        with pytest.raises(ValueError):
            random_crop(batch, np.random.default_rng(0), padding=0)


class TestCutout:
    def test_zeroes_a_patch(self, batch):
        positive = np.abs(batch) + 1.0
        out = cutout(positive, np.random.default_rng(0), size=8)
        assert (out == 0).any()
        assert out.shape == positive.shape

    def test_zero_fraction_bounded(self, batch):
        positive = np.abs(batch) + 1.0
        out = cutout(positive, np.random.default_rng(1), size=8)
        frac = (out == 0).mean()
        assert frac <= (8 * 8) / (32 * 32) + 1e-9

    def test_invalid_size(self, batch):
        with pytest.raises(ValueError):
            cutout(batch, np.random.default_rng(0), size=0)


class TestAugmenter:
    def test_composition_runs(self, batch):
        aug = Augmenter(flip=True, crop_padding=4, cutout_size=8, seed=0)
        out = aug(batch)
        assert out.shape == batch.shape
        assert not np.array_equal(out, batch)

    def test_deterministic_by_seed(self, batch):
        a = Augmenter(seed=5)(batch)
        b = Augmenter(seed=5)(batch)
        assert np.array_equal(a, b)

    def test_disabled_transforms(self, batch):
        aug = Augmenter(flip=False, crop_padding=0, cutout_size=0)
        assert np.array_equal(aug(batch), batch)

    def test_label_preserving_augmentation_trains_fine(self):
        """End-to-end: crop-only augmentation on a small training set.

        Note: horizontal flips are *label-destroying* on SyntheticCIFAR
        (class identity includes texture orientation, and flipping maps
        angle theta -> pi - theta, i.e. towards another class), so the
        policy here is crop-only.  The flip transform itself is covered
        by the unit tests above.
        """
        from repro.data import SyntheticCIFAR
        from repro.models import vgg11
        from repro.pipeline.trainer import evaluate_model
        from repro.optim import Adam
        from repro.tensor import Tensor, functional as F
        from repro.data.loaders import DataLoader

        ds = SyntheticCIFAR(
            num_train=150, num_test=200, noise=1.0, class_overlap=0.4, seed=41
        )
        model = vgg11(width=0.125, seed=0)
        opt = Adam(list(model.parameters()), lr=2e-3)
        aug = Augmenter(flip=False, crop_padding=2, cutout_size=0, seed=1)
        loader = DataLoader(
            ds.train_x, ds.train_y, batch_size=50, rng=np.random.default_rng(2)
        )
        for _ in range(6):
            model.train()
            for xb, yb in loader:
                loss = F.cross_entropy(model(Tensor(aug(xb))), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert evaluate_model(model, ds.test_x, ds.test_y) > 0.8
