"""Serving robustness: batching, shedding, breaking, degrading, draining.

Unit layers (breaker, degrade policy, estimator, decoding) run against
fake clocks and stub workers so every timing-sensitive transition is
deterministic.  The integration layer starts a real server (ephemeral
port, background event-loop thread) over a tiny calibrated SNN and
exercises the failure paths end to end: a worker wedged mid-request
trips the breaker and is replaced while later requests still get
answers; unmeetable deadlines 504 before dispatch; a bounded queue
sheds with 429 + Retry-After; drain completes in-flight work; degraded
responses are exact prefixes of the full-T logits.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.serve import (
    BadRequestError,
    BatcherConfig,
    BreakerOpenError,
    CircuitBreaker,
    CLOSED,
    DeadlineError,
    DegradePolicy,
    DrainingError,
    HALF_OPEN,
    MicroBatcher,
    OPEN,
    ServeConfig,
    ServerHandle,
    ServiceEstimator,
    ServingMetrics,
    ShedError,
    WorkerFailedError,
    authenticate,
    build_demo_network,
    decode_infer_request,
    percentile,
)
from repro.serve.app import InferenceServer
from repro.snn.engines import EngineWorker, make_engine
from repro.snn.engines.service import WorkerTimeout


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def make(self, threshold=3, reset=2.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset, clock=clock
        )
        return breaker, clock

    def test_trips_after_consecutive_failures_only(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # success resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_rejects_with_remaining_cooldown(self):
        breaker, clock = self.make(threshold=1, reset=5.0)
        breaker.record_failure()
        allowed, retry_after = breaker.allow_request()
        assert not allowed and retry_after == pytest.approx(5.0)
        clock.advance(3.0)
        allowed, retry_after = breaker.allow_request()
        assert not allowed and retry_after == pytest.approx(2.0)
        assert breaker.before_dispatch() is None

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN
        assert breaker.before_dispatch() == "probe"
        assert breaker.before_dispatch() is None  # probe in flight: hold

    def test_probe_success_closes_and_counts_recovery(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.before_dispatch() == "probe"
        breaker.record_success(probe=True)
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        assert breaker.before_dispatch() == "normal"

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = self.make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.before_dispatch() == "probe"
        breaker.record_failure(probe=True)
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.advance(1.5)
        assert breaker.before_dispatch() == "probe"  # probes again

    def test_transition_callback_fires(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            reset_timeout=1.0,
            clock=clock,
            on_transition=lambda old, new, why: seen.append((old, new)),
        )
        breaker.record_failure()
        clock.advance(1.5)
        _ = breaker.state
        breaker.record_success(probe=True)
        assert seen == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]


# ----------------------------------------------------------------------
# Degrade policy + estimator + metrics
# ----------------------------------------------------------------------
class TestDegradePolicy:
    def test_halves_toward_floor_and_recovers(self):
        clock = FakeClock()
        policy = DegradePolicy(
            full_timesteps=8, min_timesteps=2, p99_budget_ms=100.0,
            cooldown_seconds=1.0, clock=clock,
        )
        assert policy.observe(250.0) == 4
        clock.advance(1.1)
        assert policy.observe(250.0) == 2
        clock.advance(1.1)
        assert policy.observe(250.0) == 2  # floor holds
        clock.advance(1.1)
        assert policy.observe(30.0) == 4   # < 60% of budget: recover
        clock.advance(1.1)
        assert policy.observe(30.0) == 8
        assert policy.degradations == 2 and policy.recoveries == 2

    def test_cooldown_blocks_oscillation(self):
        clock = FakeClock()
        policy = DegradePolicy(
            full_timesteps=8, p99_budget_ms=100.0,
            cooldown_seconds=5.0, clock=clock,
        )
        assert policy.observe(300.0) == 4
        assert policy.observe(300.0) == 4  # within cooldown: no change
        assert policy.observe(10.0) == 4

    def test_disabled_without_budget(self):
        policy = DegradePolicy(full_timesteps=8)
        assert policy.observe(10_000.0) == 8 and not policy.degraded


class TestServiceEstimator:
    def test_estimate_scales_with_work(self):
        est = ServiceEstimator(initial_unit=1e-3, overhead=2e-3)
        assert est.estimate(4, 8) == pytest.approx(2e-3 + 32e-3)

    def test_update_tracks_observations(self):
        est = ServiceEstimator(initial_unit=1e-3, overhead=0.0, alpha=1.0)
        est.update(2, 4, elapsed=0.8)
        assert est.unit == pytest.approx(0.1)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == 51
        assert percentile(values, 0.99) == 99
        assert percentile([], 0.5) == 0.0

    def test_snapshot_and_p99(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        assert metrics.p99_ms() is None
        metrics.inc("shed_queue")
        metrics.observe_latency(0.050)
        clock.advance(1.0)
        snap = metrics.snapshot()
        assert snap["counters"]["shed_queue"] == 1
        assert snap["latency_ms"]["p50"] == pytest.approx(50.0)
        assert metrics.p99_ms() == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Request decoding / auth
# ----------------------------------------------------------------------
class TestDecoding:
    SHAPE = (2, 4, 4)

    def decode(self, body: bytes):
        return decode_infer_request(body, self.SHAPE, 1000.0, 8)

    def test_valid_roundtrip(self):
        sample = np.zeros(self.SHAPE, dtype=np.float32)
        body = ('{"input": ' + str(sample.tolist()) +
                ', "deadline_ms": 50, "timesteps": 4}').encode()
        batch, timesteps, deadline = self.decode(body)
        assert batch.shape == (1,) + self.SHAPE
        assert timesteps == 4 and deadline == 50.0

    @pytest.mark.parametrize(
        "body",
        [
            b"not json",
            b"[1, 2, 3]",
            b'{"nope": 1}',
            b'{"input": [[1, 2], [3]]}',
            b'{"input": [1.0, 2.0]}',
            b'{"input": "text"}',
        ],
    )
    def test_malformed_bodies_reject(self, body):
        with pytest.raises(BadRequestError):
            self.decode(body)

    def test_bad_timesteps_and_deadline_reject(self):
        flat = np.zeros(self.SHAPE, dtype=np.float32).tolist()
        for extra in ('"timesteps": 0', '"timesteps": 99',
                      '"timesteps": true', '"deadline_ms": -5',
                      '"deadline_ms": "soon"'):
            body = ('{"input": ' + str(flat) + ', ' + extra + '}').encode()
            with pytest.raises(BadRequestError):
                self.decode(body)

    def test_nonfinite_input_rejects(self):
        sample = np.zeros(self.SHAPE, dtype=np.float32)
        sample[0, 0, 0] = np.nan
        body = ('{"input": ' + str(
            sample.tolist()).replace("nan", "NaN") + '}').encode()
        with pytest.raises(BadRequestError):
            self.decode(body)

    def test_authenticate(self):
        authenticate({}, None)  # no token configured: open
        authenticate({"authorization": "Bearer s3cret"}, "s3cret")
        with pytest.raises(Exception):
            authenticate({}, "s3cret")
        with pytest.raises(Exception):
            authenticate({"authorization": "Bearer wrong"}, "s3cret")


# ----------------------------------------------------------------------
# Micro-batcher over a stub worker (timing-deterministic)
# ----------------------------------------------------------------------
class StubRun:
    """Shape-compatible EngineRun: cumulative per-step logits."""

    def __init__(self, n: int, timesteps: int, classes: int = 3) -> None:
        base = np.arange(n * classes, dtype=np.float32).reshape(n, classes)
        self.per_step = [base * (t + 1) for t in range(timesteps)]
        self.logits = self.per_step[-1]


class StubWorker:
    """Duck-typed EngineWorker: scripted delays and failures."""

    def __init__(self, delay: float = 0.0, fail_times: int = 0) -> None:
        self.delay = delay
        self.fail_times = fail_times
        self.calls = []
        self.restarts = 0
        self.shard_failures = 0
        self.last_degraded_mode = ""

    async def run_async(self, x, timesteps, per_step=False, timeout=None):
        self.calls.append((int(x.shape[0]), int(timesteps)))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise WorkerTimeout("scripted hang")
        return StubRun(x.shape[0], timesteps)


def make_batcher(worker, *, threshold=3, reset=0.2, queue=8, gather=0.05,
                 degrade_budget=None, estimator=None, max_batch=8):
    metrics = ServingMetrics()
    breaker = CircuitBreaker(failure_threshold=threshold, reset_timeout=reset)
    degrade = DegradePolicy(
        full_timesteps=4, p99_budget_ms=degrade_budget, cooldown_seconds=0.0
    )
    batcher = MicroBatcher(
        worker,
        breaker,
        metrics,
        degrade,
        config=BatcherConfig(
            max_batch_size=max_batch,
            max_queue_depth=queue,
            gather_window_seconds=gather,
            hang_timeout_seconds=5.0,
            idle_tick_seconds=0.01,
        ),
        estimator=estimator or ServiceEstimator(initial_unit=1e-4, overhead=1e-4),
    )
    return batcher, breaker, metrics


def sample(n=1):
    return np.zeros((n, 2, 2, 2), dtype=np.float32)


class TestMicroBatcher:
    def test_coalesces_concurrent_requests_into_one_dispatch(self):
        async def scenario():
            worker = StubWorker(delay=0.01)
            batcher, _, _ = make_batcher(worker, gather=0.08)
            batcher.start()
            futures = [
                batcher.submit(sample(), timesteps=4, deadline_ms=2000.0)
                for _ in range(4)
            ]
            results = await asyncio.gather(*futures)
            await batcher.close()
            return worker.calls, results

        calls, results = asyncio.run(scenario())
        total = sum(n for n, _ in calls)
        assert total == 4
        assert max(n for n, _ in calls) >= 3  # coalesced, not serial singles
        sizes = {r["batch_size"] for r in results}
        assert max(sizes) >= 3

    def test_unmeetable_deadline_rejected_at_admission(self):
        async def scenario():
            worker = StubWorker()
            slow = ServiceEstimator(initial_unit=0.5, overhead=0.1)
            batcher, _, metrics = make_batcher(worker, estimator=slow)
            batcher.start()
            with pytest.raises(DeadlineError):
                batcher.submit(sample(), timesteps=4, deadline_ms=10.0)
            await batcher.close()
            return metrics.counter("rejected_deadline"), worker.calls

        rejected, calls = asyncio.run(scenario())
        assert rejected == 1 and calls == []  # never dispatched

    def test_bounded_queue_sheds_with_retry_after(self):
        async def scenario():
            worker = StubWorker(delay=0.2)
            batcher, _, metrics = make_batcher(
                worker, queue=2, gather=0.0, max_batch=1
            )
            batcher.start()
            futures = [batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)]
            await asyncio.sleep(0.05)  # first entry reaches the engine
            futures += [
                batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
                for _ in range(2)
            ]
            # One in flight + two queued: the queue is full now.
            with pytest.raises(ShedError) as shed:
                batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
            await asyncio.gather(*futures)
            await batcher.close()
            return shed.value, metrics.counter("shed_queue")

        error, shed_count = asyncio.run(scenario())
        assert error.retry_after is not None and error.retry_after >= 0.0
        assert shed_count == 1

    def test_breaker_trips_fast_fails_queue_then_recovers(self):
        async def scenario():
            worker = StubWorker(fail_times=2)
            batcher, breaker, metrics = make_batcher(
                worker, threshold=2, reset=0.05, gather=0.0, max_batch=1
            )
            batcher.start()
            futures = [
                batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
                for _ in range(4)
            ]
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
            assert breaker.state in (OPEN, HALF_OPEN)
            # While open, admission fast-fails with Retry-After.
            if breaker.state == OPEN:
                with pytest.raises(BreakerOpenError):
                    batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
            # After the cooldown the next dispatch is the half-open
            # probe; the worker is healthy again, so it recovers.
            await asyncio.sleep(0.1)
            future = batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
            result = await future
            await batcher.close()
            return outcomes, breaker, result, metrics

        outcomes, breaker, result, metrics = asyncio.run(scenario())
        kinds = {type(o).__name__ for o in outcomes}
        assert kinds <= {"WorkerFailedError", "BreakerOpenError"}
        assert any(isinstance(o, WorkerFailedError) for o in outcomes)
        assert any(isinstance(o, BreakerOpenError) for o in outcomes)
        assert breaker.trips >= 1 and breaker.recoveries >= 1
        assert breaker.state == CLOSED
        assert result["batch_size"] == 1  # the recovery probe rode alone

    def test_drain_completes_inflight_then_refuses_admission(self):
        async def scenario():
            worker = StubWorker(delay=0.05)
            batcher, _, _ = make_batcher(worker, gather=0.0)
            batcher.start()
            futures = [
                batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
                for _ in range(3)
            ]
            flushed = await batcher.drain(timeout=5.0)
            results = await asyncio.gather(*futures)
            with pytest.raises(DrainingError):
                batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
            await batcher.close()
            return flushed, results

        flushed, results = asyncio.run(scenario())
        assert flushed is True
        assert all(r["timesteps_executed"] == 4 for r in results)

    def test_expired_entry_dropped_before_dispatch(self):
        async def scenario():
            worker = StubWorker(delay=0.15)
            batcher, _, metrics = make_batcher(worker, gather=0.0, max_batch=1)
            batcher.start()
            blocker = batcher.submit(sample(), timesteps=4, deadline_ms=10_000.0)
            await asyncio.sleep(0.01)
            # Queued behind the blocker with a deadline the wait eats.
            doomed = batcher.submit(sample(), timesteps=4, deadline_ms=50.0)
            with pytest.raises(DeadlineError):
                await doomed
            await blocker
            await batcher.close()
            return metrics.counter("expired_in_queue"), worker.calls

        expired, calls = asyncio.run(scenario())
        assert expired == 1
        assert sum(n for n, _ in calls) == 1  # the doomed entry never ran


# ----------------------------------------------------------------------
# Degraded-T prefix consistency on the real engine
# ----------------------------------------------------------------------
def tiny_network(seed=0, shape=(2, 4, 4), classes=5):
    model, _ = build_demo_network(input_shape=shape, classes=classes, seed=seed)
    return model


class TestDegradedPrefixConsistency:
    def test_degraded_logits_are_prefix_of_full_run(self):
        shape = (2, 4, 4)
        model = tiny_network(shape=shape)
        engine = make_engine("dense").bind(model)
        worker = EngineWorker(engine, probe_shape=shape)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1,) + shape).astype(np.float32)

        async def scenario():
            batcher, _, _ = make_batcher(worker, gather=0.0)
            batcher.degrade.current = 2  # force degradation
            batcher.start()
            result = await batcher.submit(x, timesteps=4, deadline_ms=30_000.0)
            await batcher.close()
            return result

        result = asyncio.run(scenario())
        assert result["degraded"] is True
        assert result["timesteps_executed"] == 2
        assert result["timesteps_requested"] == 4
        # The degraded answer must equal the cumulative logits after
        # the same number of steps of an independent full-T run.
        full = engine.run(x, 4, per_step=True)
        served = np.asarray(result["logits"], dtype=np.float32)
        np.testing.assert_array_equal(served, full.per_step[1][0])
        worker.shutdown()


# ----------------------------------------------------------------------
# Engine worker: hang recovery and health probes
# ----------------------------------------------------------------------
class StallLayer(nn.Module):
    """Pass-through that blocks while armed (class-level switch, so
    weight-sharing clones made after disarm run clean)."""

    stall_seconds = 0.0

    def forward(self, x):
        if type(self).stall_seconds:
            time.sleep(type(self).stall_seconds)
        return x


@pytest.fixture(autouse=True)
def _disarm_stall():
    yield
    StallLayer.stall_seconds = 0.0


class TestEngineWorker:
    def make_worker(self, shape=(2, 4, 4)):
        model = nn.Sequential(StallLayer(), tiny_network(shape=shape))
        engine = make_engine("dense").bind(model)
        return EngineWorker(engine, probe_shape=shape)

    def test_hung_run_times_out_and_rebuilds_slot(self):
        worker = self.make_worker()
        x = np.zeros((1, 2, 4, 4), dtype=np.float32)
        StallLayer.stall_seconds = 30.0

        async def scenario():
            with pytest.raises(WorkerTimeout):
                await worker.run_async(x, 2, timeout=0.2)
            StallLayer.stall_seconds = 0.0
            # The replacement slot serves immediately; the wedged
            # thread is stranded with the abandoned clone.
            run = await worker.run_async(x, 2, timeout=10.0)
            return run

        run = asyncio.run(scenario())
        assert worker.restarts == 1
        assert run.logits.shape[0] == 1
        worker.shutdown()

    def test_health_probe_roundtrip(self):
        worker = self.make_worker()
        probe = worker.health_probe(timeout=10.0)
        assert probe.ok and probe.latency_seconds > 0.0
        worker.shutdown()

    def test_health_probe_times_out_and_restarts(self):
        worker = self.make_worker()
        StallLayer.stall_seconds = 30.0
        probe = worker.health_probe(timeout=0.2)
        assert not probe.ok and "timed out" in probe.error
        assert worker.restarts == 1
        StallLayer.stall_seconds = 0.0
        assert worker.health_probe(timeout=10.0).ok
        worker.shutdown()


# ----------------------------------------------------------------------
# End-to-end over HTTP
# ----------------------------------------------------------------------
SHAPE = (2, 4, 4)


def serve_config(**overrides):
    defaults = dict(
        port=0,
        timesteps=4,
        engine="dense",
        gather_window_seconds=0.0,
        hang_timeout_seconds=20.0,
        drain_timeout_seconds=10.0,
        estimator_initial_unit=1e-4,
        estimator_overhead=1e-4,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestHTTPServer:
    def test_routes_and_infer(self):
        model = tiny_network(shape=SHAPE)
        with ServerHandle(model, SHAPE, serve_config()) as handle:
            assert handle.request("GET", "/healthz")[0] == 200
            assert handle.request("GET", "/readyz")[0] == 200
            assert handle.request("GET", "/nope")[0] == 404
            assert handle.request("POST", "/healthz")[0] == 405
            status, body, _ = handle.request("POST", "/v1/infer", {"input": [1]})
            assert status == 400
            x = np.zeros(SHAPE, dtype=np.float32)
            status, body = handle.infer(x, deadline_ms=30_000)
            assert status == 200
            assert body["timesteps_executed"] == 4 and not body["degraded"]
            metrics = handle.request("GET", "/metrics")[1]
            assert metrics["counters"]["responses_ok"] == 1
            assert metrics["breaker"]["state"] == "closed"

    def test_serial_responses_bit_identical_to_direct_engine_run(self):
        model = tiny_network(shape=SHAPE)
        rng = np.random.default_rng(11)
        samples = [
            rng.normal(size=SHAPE).astype(np.float32) for _ in range(3)
        ]
        with ServerHandle(model, SHAPE, serve_config()) as handle:
            served = []
            for x in samples:
                status, body = handle.infer(x, deadline_ms=30_000)
                assert status == 200 and not body["degraded"]
                served.append(np.asarray(body["logits"], dtype=np.float32))
            worker = handle.server.worker
            for x, logits in zip(samples, served):
                direct = worker.submit(x[None, ...], 4).result(30.0)
                np.testing.assert_array_equal(logits, direct.logits[0])

    def test_auth_required_when_token_configured(self):
        model = tiny_network(shape=SHAPE)
        config = serve_config(auth_token="hunter2")
        x = np.zeros(SHAPE, dtype=np.float32)
        with ServerHandle(model, SHAPE, config) as handle:
            assert handle.infer(x)[0] == 401
            assert handle.infer(x, token="wrong")[0] == 401
            assert handle.infer(x, token="hunter2", deadline_ms=30_000)[0] == 200

    def test_unmeetable_deadline_504_over_http(self):
        model = tiny_network(shape=SHAPE)
        config = serve_config(
            estimator_initial_unit=0.5, estimator_overhead=0.1
        )
        with ServerHandle(model, SHAPE, config) as handle:
            x = np.zeros(SHAPE, dtype=np.float32)
            status, body = handle.infer(x, deadline_ms=5)
            assert status == 504
            assert "deadline" in body["error"]

    def test_overload_sheds_429_with_retry_after(self):
        model = nn.Sequential(StallLayer(), tiny_network(shape=SHAPE))
        config = serve_config(max_queue_depth=1, max_batch_size=1)
        with ServerHandle(model, SHAPE, config) as handle:
            StallLayer.stall_seconds = 0.3
            x = np.zeros(SHAPE, dtype=np.float32)
            statuses = []
            headers = []
            threads = []

            def fire():
                status, _, hdrs = handle.request(
                    "POST", "/v1/infer",
                    {"input": x.tolist(), "deadline_ms": 60_000},
                )
                statuses.append(status)
                headers.append(hdrs)

            for _ in range(6):
                thread = threading.Thread(target=fire)
                thread.start()
                threads.append(thread)
                time.sleep(0.02)
            for thread in threads:
                thread.join(30.0)
            StallLayer.stall_seconds = 0.0
            assert 429 in statuses, statuses
            assert statuses.count(200) >= 1
            assert set(statuses) <= {200, 429}
            shed_headers = [
                h for s, h in zip(statuses, headers) if s == 429
            ]
            assert all("retry-after" in h for h in shed_headers)
            metrics = handle.request("GET", "/metrics")[1]
            assert metrics["counters"]["shed_queue"] >= 1

    def test_hung_worker_trips_breaker_then_recovers(self):
        model = nn.Sequential(StallLayer(), tiny_network(shape=SHAPE))
        config = serve_config(
            hang_timeout_seconds=0.3,
            breaker_failure_threshold=1,
            breaker_reset_seconds=0.3,
        )
        with ServerHandle(model, SHAPE, config) as handle:
            x = np.zeros(SHAPE, dtype=np.float32)
            StallLayer.stall_seconds = 30.0
            status, body = handle.infer(x, deadline_ms=60_000)
            assert status == 503
            # Tripped: fast-fail without touching the worker.
            status, body = handle.infer(x, deadline_ms=60_000)
            assert status == 503 and body["error"] == "circuit breaker open"
            assert handle.request("GET", "/readyz")[0] == 503
            assert handle.request("GET", "/healthz")[0] == 200  # liveness
            # Heal the substrate; the half-open probe recovers it.
            StallLayer.stall_seconds = 0.0
            deadline = time.monotonic() + 20.0
            status = None
            while time.monotonic() < deadline:
                time.sleep(0.2)
                status, body = handle.infer(x, deadline_ms=60_000)
                if status == 200:
                    break
            assert status == 200, f"never recovered: {status} {body}"
            metrics = handle.request("GET", "/metrics")[1]
            assert metrics["breaker"]["trips"] >= 1
            assert metrics["breaker"]["recoveries"] >= 1
            assert metrics["breaker"]["state"] == "closed"
            assert metrics["worker"]["restarts"] >= 1
            assert handle.request("GET", "/readyz")[0] == 200

    def test_drain_completes_inflight_work(self):
        model = nn.Sequential(StallLayer(), tiny_network(shape=SHAPE))
        with ServerHandle(model, SHAPE, serve_config()) as handle:
            StallLayer.stall_seconds = 0.2
            x = np.zeros(SHAPE, dtype=np.float32)
            outcome = {}

            def slow_request():
                outcome["status"], outcome["body"] = handle.infer(
                    x, deadline_ms=60_000
                )

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.05)  # let it reach the engine
            handle.stop(timeout=30.0)
            thread.join(30.0)
            StallLayer.stall_seconds = 0.0
            assert outcome.get("status") == 200, outcome
            assert outcome["body"]["timesteps_executed"] == 4

    def test_draining_server_refuses_new_work(self):
        model = tiny_network(shape=SHAPE)
        handle = ServerHandle(model, SHAPE, serve_config())
        try:
            handle.server.batcher.begin_drain()
            x = np.zeros(SHAPE, dtype=np.float32)
            status, body = handle.infer(x, deadline_ms=30_000)
            assert status == 503 and body["error"] == "draining"
        finally:
            handle.stop()
